//! Closed-loop load harness for the ds-serve micro-batching server (the
//! `loadtest` binary and the perf suite's `serve_throughput` case).
//!
//! Simulates a fleet of meters reporting at mixed cadences — 30 s, 1 min
//! and 10 min, the reporting intervals of real smart-meter deployments —
//! by flattening the per-meter schedules tick by tick into one request
//! sequence, then replaying that sequence from a fixed set of keep-alive
//! HTTP connections in closed loop (every connection fires its next
//! request the moment the previous response lands, so the server sees
//! sustained concurrency rather than paced arrivals).
//!
//! Three contracts are measured, not assumed:
//!
//! - **Decisions**: every 200 response is diffed against a per-request
//!   oracle computed with direct [`ds_camal::FrozenCamal`] calls. The
//!   micro-batcher must reproduce the detection flag and status mask
//!   exactly and the probability within `1e-6` (a shortest-round-trip
//!   float survives the JSON hop well inside that). `flips` counts
//!   violations; a published run has zero.
//! - **Allocations**: the server's `steady_allocs` counter (heap events
//!   inside batched kernel calls, measured by the workers themselves)
//!   must read zero after warmup whenever ds-obs recording is off.
//! - **Backpressure**: a second, deliberately tiny server (one worker,
//!   shallow queue) is burst-loaded until the admission bound trips; the
//!   probe asserts 503s appear *only* under that bound and that a fresh
//!   request succeeds once the burst drains.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_camal::Camal;
use ds_serve::{Client, ModelRegistry, ServeConfig, Server};
use serde::Serialize;
use serde_json::Value;

use crate::perf::PerfScale;

/// Dataset/appliance identity the harness registers its model under.
const PRESET: &str = "BENCH";
const APPLIANCE: &str = "kettle";

/// Load-phase shape. [`LoadConfig::from_scale`] derives it from the perf
/// suite's [`PerfScale`] so `--smoke` and unit tests shrink coherently.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Samples per request window (shorter than the perf window: meters
    /// report short recent slices, not 12 h batches).
    pub window: usize,
    /// Simulated meters in the fleet.
    pub meters: usize,
    /// Concurrent keep-alive client connections replaying the schedule.
    pub connections: usize,
    /// Total requests in the timed phase.
    pub requests: usize,
    /// Inference worker threads for the main server.
    pub workers: usize,
}

impl LoadConfig {
    /// Derive a load shape from the perf-suite scale: full scale maps to
    /// a ~1600-meter fleet and 4000 requests over 120-sample windows.
    pub fn from_scale(scale: PerfScale) -> LoadConfig {
        LoadConfig {
            window: (scale.window / 6).max(32),
            meters: (scale.batch * scale.iters * 10).max(8),
            connections: 6,
            requests: (scale.batch * scale.iters * 25).max(64),
            workers: ds_par::threads(),
        }
    }
}

/// Everything one run measured, serialized for CI and the perf case.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Requests in the timed phase.
    pub requests: u64,
    /// Simulated meters.
    pub meters: u64,
    /// Wall time of the timed phase, seconds.
    pub elapsed_secs: f64,
    /// Served throughput over the timed phase.
    pub req_per_sec: f64,
    /// Median per-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency, milliseconds (SLO: 50 ms).
    pub p99_ms: f64,
    /// Wall time of the direct-call baseline: the same request sequence
    /// as sequential single-window `FrozenCamal` calls, no server.
    pub direct_secs: f64,
    /// `direct_secs / elapsed_secs` — how the served path compares to
    /// bare in-process inference (HTTP + JSON overhead vs batching gain).
    pub speedup: f64,
    /// Responses whose decision diverged from the direct-call oracle
    /// (detection flag, status mask, or probability beyond 1e-6).
    pub flips: u64,
    /// Largest probability deviation observed against the oracle.
    pub max_prob_delta: f64,
    /// Non-200 responses in the timed phase (must be zero: the main
    /// server is sized so admission control never trips under the
    /// schedule).
    pub errors: u64,
    /// Heap allocations inside batched kernel calls, server-measured.
    pub steady_allocs: u64,
    /// Mean batch fill over the timed phase, in `[0, 1]`.
    pub mean_batch_fill: f64,
    /// Batches dispatched full vs by deadline expiry.
    pub full_batches: u64,
    /// See [`LoadReport::full_batches`].
    pub deadline_batches: u64,
    /// Successful streaming `push` requests in the stream smoke.
    pub push_oks: u64,
    /// 200s observed while burst-loading the shallow-queue probe server.
    pub overload_ok: u64,
    /// 503s observed under the same burst (must be > 0: the bound works).
    pub overload_rejected: u64,
    /// Whether a fresh request succeeded after the burst drained.
    pub recovered: bool,
}

/// Meter reporting period in 30 s ticks: half the fleet reports every
/// 30 s, a third every minute, the rest every 10 minutes.
fn meter_period(meter: usize) -> usize {
    match meter % 6 {
        0..=2 => 1,
        3 | 4 => 2,
        _ => 20,
    }
}

/// Flatten the per-meter cadences, tick by tick, into exactly
/// `requests` `(meter, tick)` entries.
fn schedule(config: &LoadConfig) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(config.requests);
    let mut tick = 0usize;
    while out.len() < config.requests {
        for meter in 0..config.meters {
            let period = meter_period(meter);
            if tick % period == meter % period {
                out.push((meter, tick));
                if out.len() == config.requests {
                    return out;
                }
            }
        }
        tick += 1;
    }
    out
}

/// The window a meter reports at a tick: deterministic, varied, and
/// non-degenerate (same generator family as the perf serving windows).
fn meter_window(meter: usize, tick: usize, window: usize) -> Vec<f32> {
    (0..window)
        .map(|i| {
            ((meter * 13 + tick * 7 + i) % 29) as f32 * 55.0
                + ((i + tick) as f32 * 0.11).sin() * 20.0
        })
        .collect()
}

fn window_body(values: &[f32]) -> String {
    let mut s = String::with_capacity(values.len() * 8 + 64);
    s.push_str("{\"preset\":\"");
    s.push_str(PRESET);
    s.push_str("\",\"appliance\":\"");
    s.push_str(APPLIANCE);
    s.push_str("\",\"values\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{v}"));
    }
    s.push_str("]}");
    s
}

fn push_body(meter: usize, window: usize, values: &[f32]) -> String {
    let mut s = String::with_capacity(values.len() * 8 + 96);
    s.push_str(&format!(
        "{{\"meter\":\"m{meter}\",\"preset\":\"{PRESET}\",\"appliance\":\"{APPLIANCE}\",\"window\":{window},\"values\":["
    ));
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{v}"));
    }
    s.push_str("]}");
    s
}

/// What the direct path said about one request's window.
struct Oracle {
    probability: f32,
    detected: bool,
    status: String,
}

fn percentile_ms(sorted_nanos: &[u64], q: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_nanos.len() - 1) as f64 * q).round() as usize;
    sorted_nanos[rank] as f64 / 1e6
}

fn registry_with(model: &Camal, window: usize) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    registry.register(PRESET, APPLIANCE, window, model.clone(), Vec::new());
    registry
}

/// Run the full harness: direct baseline + oracle, timed served phase,
/// streaming push smoke, and the shallow-queue overload probe.
pub fn run(config: &LoadConfig, model: &Camal) -> LoadReport {
    let _span = ds_obs::span!("bench.serve_load");
    let plan_requests = schedule(config);
    let windows: Vec<Vec<f32>> = plan_requests
        .iter()
        .map(|&(meter, tick)| meter_window(meter, tick, config.window))
        .collect();
    // Every 3rd request exercises `detect`; the rest take `localize`
    // (whose status mask makes the oracle comparison strict).
    let bodies: Arc<Vec<(&'static str, String)>> = Arc::new(
        windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let path = if i % 3 == 0 {
                    "/api/v1/detect"
                } else {
                    "/api/v1/localize"
                };
                (path, window_body(w))
            })
            .collect(),
    );

    // Direct-call baseline: the same request sequence as sequential
    // single-window plan calls — what a client fleet would pay without
    // the server (per request, no batching). Timed over pure inference;
    // the oracle outputs are collected in a second, untimed pass.
    let mut direct = model.freeze();
    let warmup: Vec<&[f32]> = vec![windows[0].as_slice()];
    let _ = direct.localize_batch_into(&warmup);
    let direct_started = Instant::now();
    for w in &windows {
        let _ = direct.localize_batch_into(&[w.as_slice()]);
    }
    let direct_secs = direct_started
        .elapsed()
        .as_secs_f64()
        .max(f64::MIN_POSITIVE);
    let oracle: Vec<Oracle> = windows
        .iter()
        .map(|w| {
            let batch = direct.localize_batch_into(&[w.as_slice()]);
            Oracle {
                probability: batch.probability(0),
                detected: batch.detected(0),
                status: batch
                    .status(0)
                    .iter()
                    .map(|&s| if s == 1 { '1' } else { '0' })
                    .collect(),
            }
        })
        .collect();

    // Timed served phase: closed-loop clients over keep-alive sockets.
    let server = Server::start(
        ServeConfig {
            workers: config.workers,
            ..ServeConfig::default()
        },
        registry_with(model, config.window),
    )
    .expect("loadtest server binds on a loopback port");
    let addr = server.addr().to_string();
    let next = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let clients: Vec<_> = (0..config.connections.max(1))
        .map(|_| {
            let next = Arc::clone(&next);
            let bodies = Arc::clone(&bodies);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("loadtest client connects");
                let mut out: Vec<(usize, u16, String, u64)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= bodies.len() {
                        return out;
                    }
                    let (path, body) = &bodies[idx];
                    let sent = Instant::now();
                    let (status, reply) =
                        client.post(path, body).expect("loadtest request completes");
                    out.push((idx, status, reply, sent.elapsed().as_nanos() as u64));
                }
            })
        })
        .collect();
    let mut results: Vec<(usize, u16, String, u64)> = Vec::with_capacity(bodies.len());
    for handle in clients {
        results.extend(handle.join().expect("loadtest client thread"));
    }
    let elapsed_secs = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);

    // Oracle diff, off the clock.
    let mut flips = 0u64;
    let mut errors = 0u64;
    let mut max_prob_delta = 0.0f64;
    for (idx, status, reply, _) in &results {
        if *status != 200 {
            errors += 1;
            continue;
        }
        let parsed = serde_json::parse_value_complete(reply).expect("response is JSON");
        let probability = parsed
            .get("probability")
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN);
        let detected = parsed
            .get("detected")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let o = &oracle[*idx];
        let delta = (probability - f64::from(o.probability)).abs();
        max_prob_delta = max_prob_delta.max(delta);
        let status_matches = match parsed.get("status").and_then(Value::as_str) {
            Some(mask) => mask == o.status,
            None => true, // detect responses carry no mask
        };
        // NaN-safe: a missing/NaN probability must count as a flip.
        if detected != o.detected || !status_matches || delta.is_nan() || delta > 1e-6 {
            flips += 1;
        }
    }
    let mut latencies: Vec<u64> = results.iter().map(|&(_, _, _, ns)| ns).collect();
    latencies.sort_unstable();

    // Streaming push smoke (untimed): a few meters stream half-window
    // deltas through per-meter sessions on the same server.
    let mut push_oks = 0u64;
    {
        let mut client = Client::connect(&addr).expect("push client connects");
        let stride = (config.window / 2).max(1);
        for meter in 0..config.meters.min(4) {
            let series = meter_window(meter, 0, config.window * 2);
            for chunk in series.chunks(stride) {
                let body = push_body(meter, config.window, chunk);
                let (status, _) = client
                    .post("/api/v1/push", &body)
                    .expect("push request completes");
                if status == 200 {
                    push_oks += 1;
                }
            }
        }
    }

    let stats = server.stats();
    let steady_allocs = stats.steady_allocs.load(Ordering::Relaxed);
    let mean_batch_fill = stats.mean_batch_fill(server.batch_windows());
    let full_batches = stats.full_batches.load(Ordering::Relaxed);
    let deadline_batches = stats.deadline_batches.load(Ordering::Relaxed);
    server.shutdown();

    let (overload_ok, overload_rejected, recovered) = overload_probe(model, config.window);

    LoadReport {
        requests: results.len() as u64,
        meters: config.meters as u64,
        elapsed_secs,
        req_per_sec: results.len() as f64 / elapsed_secs,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        direct_secs,
        speedup: direct_secs / elapsed_secs,
        flips,
        max_prob_delta,
        errors,
        steady_allocs,
        mean_batch_fill,
        full_batches,
        deadline_batches,
        push_oks,
        overload_ok,
        overload_rejected,
        recovered,
    }
}

/// Burst a deliberately under-provisioned server (one worker, four queue
/// slots, slow deadline) until admission control trips. Returns
/// `(oks, rejected 503s, recovered)` — both counts must be nonzero for
/// the probe to prove anything, and `recovered` shows the 503s stop once
/// the burst drains (backpressure, not a wedge).
fn overload_probe(model: &Camal, window: usize) -> (u64, u64, bool) {
    let probe = Server::start(
        ServeConfig {
            workers: 1,
            queue_depth: 4,
            max_wait: Duration::from_millis(20),
            ..ServeConfig::default()
        },
        registry_with(model, window),
    )
    .expect("probe server binds on a loopback port");
    let addr = probe.addr().to_string();
    let body = Arc::new(window_body(&meter_window(0, 0, window)));
    // Pre-freeze the plan so the burst measures queue admission, not the
    // one-time freeze.
    {
        let mut client = Client::connect(&addr).expect("probe warmup connects");
        let (status, _) = client
            .post("/api/v1/localize", &body)
            .expect("probe warmup completes");
        assert_eq!(status, 200, "probe warmup request must succeed");
    }
    let burst: Vec<_> = (0..24)
        .map(|_| {
            let addr = addr.clone();
            let body = Arc::clone(&body);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("probe client connects");
                let mut ok = 0u64;
                let mut rejected = 0u64;
                for _ in 0..6 {
                    let (status, _) = client
                        .post("/api/v1/localize", &body)
                        .expect("probe request completes");
                    match status {
                        200 => ok += 1,
                        503 => rejected += 1,
                        other => panic!("probe got unexpected status {other}"),
                    }
                }
                (ok, rejected)
            })
        })
        .collect();
    let mut ok = 0u64;
    let mut rejected = 0u64;
    for handle in burst {
        let (o, r) = handle.join().expect("probe client thread");
        ok += o;
        rejected += r;
    }
    // The queue is empty again: a fresh request must succeed.
    let mut client = Client::connect(&addr).expect("recovery client connects");
    let (status, _) = client
        .post("/api/v1/localize", &body)
        .expect("recovery request completes");
    let recovered = status == 200;
    probe.shutdown();
    (ok, rejected, recovered)
}

/// Render a report as human-readable lines (the loadtest binary's
/// output; CI greps the PASS verdict printed separately).
pub fn render(report: &LoadReport) -> String {
    format!(
        "serve loadtest: {} requests from {} meters\n\
         \x20 throughput {:.0} req/s (elapsed {:.2} s; direct baseline {:.2} s, {:.2}x)\n\
         \x20 latency p50 {:.2} ms  p99 {:.2} ms\n\
         \x20 oracle: {} flips, max probability delta {:.1e}, {} errors\n\
         \x20 batching: mean fill {:.2} ({} full, {} deadline), steady allocs {}\n\
         \x20 streaming: {} push oks\n\
         \x20 overload probe: {} ok, {} rejected (503), recovered: {}\n",
        report.requests,
        report.meters,
        report.req_per_sec,
        report.elapsed_secs,
        report.direct_secs,
        report.speedup,
        report.p50_ms,
        report.p99_ms,
        report.flips,
        report.max_prob_delta,
        report.errors,
        report.mean_batch_fill,
        report.full_batches,
        report.deadline_batches,
        report.steady_allocs,
        report.push_oks,
        report.overload_ok,
        report.overload_rejected,
        report.recovered,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_mixes_cadences_and_hits_the_request_count() {
        let config = LoadConfig {
            window: 32,
            meters: 24,
            connections: 2,
            requests: 200,
            workers: 1,
        };
        let plan = schedule(&config);
        assert_eq!(plan.len(), 200);
        // Fast meters dominate the flattened schedule; slow meters still
        // appear once the tick horizon passes their period.
        let fast = plan.iter().filter(|&&(m, _)| meter_period(m) == 1).count();
        let slow = plan.iter().filter(|&&(m, _)| meter_period(m) == 20).count();
        assert!(fast > slow, "fast meters must dominate ({fast} vs {slow})");
        assert!(slow > 0, "10-minute meters must still report");
    }

    #[test]
    fn tiny_load_run_is_flip_free_and_backpressure_works() {
        let tiny = PerfScale {
            batch: 2,
            window: 96,
            iters: 1,
        };
        let config = LoadConfig {
            connections: 3,
            ..LoadConfig::from_scale(tiny)
        };
        let model = crate::perf::trained_serving_model(tiny);
        let report = run(&config, &model);
        assert_eq!(report.requests, config.requests as u64);
        assert_eq!(
            report.flips, 0,
            "served decisions diverged from direct calls"
        );
        assert_eq!(report.errors, 0, "main phase must not be rejected");
        if !ds_obs::enabled() {
            assert_eq!(report.steady_allocs, 0, "batched kernels allocated");
        }
        assert!(report.push_oks > 0, "streaming push smoke got no 200s");
        assert!(
            report.overload_rejected > 0,
            "probe never tripped admission"
        );
        assert!(report.overload_ok > 0, "probe starved every request");
        assert!(report.recovered, "probe did not recover after the burst");
    }
}
