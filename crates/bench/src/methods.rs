//! The unified method registry: the 7 approaches of the benchmark behind
//! one `fit → Localizer` interface.

use crate::speed::SpeedPreset;
use ds_baselines::seqnet::SeqTrainConfig;
use ds_baselines::{archs, Localizer, StrongLocalizer, WeakSliding, WindowPrediction};
use ds_camal::{Camal, CamalConfig};
use ds_datasets::labels::Corpus;
use ds_metrics::labels::Supervision;

/// Alias kept public so `speed` can name the config without a dependency
/// cycle.
pub type SeqCfg = SeqTrainConfig;

/// The seven benchmarked methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodName {
    /// The paper's contribution.
    Camal,
    /// Weakly supervised sliding-window classifier baseline.
    WeakSliding,
    /// Strong-label FCN seq2seq.
    Fcn,
    /// Strong-label DAE.
    Dae,
    /// Strong-label multi-scale UNet variant.
    UnetMs,
    /// Strong-label dilated TCN.
    Tcn,
    /// Strong-label Seq2Point-style CNN.
    Seq2Point,
}

/// All methods in benchmark display order.
pub const ALL_METHODS: [MethodName; 7] = [
    MethodName::Camal,
    MethodName::WeakSliding,
    MethodName::Fcn,
    MethodName::Dae,
    MethodName::UnetMs,
    MethodName::Tcn,
    MethodName::Seq2Point,
];

impl MethodName {
    /// Display name used in reports and the app.
    pub fn display(self) -> &'static str {
        match self {
            MethodName::Camal => "CamAL",
            MethodName::WeakSliding => "WeakSliding",
            MethodName::Fcn => "FCN",
            MethodName::Dae => "DAE",
            MethodName::UnetMs => "UNet-MS",
            MethodName::Tcn => "TCN",
            MethodName::Seq2Point => "Seq2Point",
        }
    }

    /// Parse a display name.
    pub fn parse(s: &str) -> Option<MethodName> {
        ALL_METHODS
            .into_iter()
            .find(|m| m.display().eq_ignore_ascii_case(s))
    }

    /// Supervision style (label currency) of the method.
    pub fn supervision(self) -> Supervision {
        match self {
            MethodName::Camal | MethodName::WeakSliding => Supervision::Weak,
            _ => Supervision::Strong,
        }
    }
}

/// Adapter making a trained [`Camal`] a [`Localizer`] like every baseline.
pub struct CamalMethod {
    model: Camal,
    windows_used: usize,
}

impl CamalMethod {
    /// Train CamAL on the corpus (optionally capping the window budget).
    pub fn fit(corpus: &Corpus, max_windows: Option<usize>, config: &CamalConfig) -> CamalMethod {
        let mut capped = corpus.clone();
        if let Some(n) = max_windows {
            capped.truncate_train(n.max(1));
        }
        let model = Camal::train(&capped, config);
        CamalMethod {
            model,
            windows_used: capped.train.len(),
        }
    }

    /// The trained model.
    pub fn model(&self) -> &Camal {
        &self.model
    }

    /// Labels consumed (weak supervision: one per window).
    pub fn labels_used(&self) -> u64 {
        self.windows_used as u64
    }
}

impl Localizer for CamalMethod {
    fn name(&self) -> &str {
        "CamAL"
    }

    fn supervision(&self) -> Supervision {
        Supervision::Weak
    }

    fn predict(&self, window: &[f32]) -> WindowPrediction {
        let out = self.model.localize(window);
        WindowPrediction {
            probability: out.detection.probability,
            status: out.status,
        }
    }
}

/// A fitted method plus its label accounting.
pub struct FittedMethod {
    /// The trained localizer.
    pub localizer: Box<dyn Localizer>,
    /// Labels the training consumed (weak: windows; strong: windows × len).
    pub labels_used: u64,
}

/// Fit any benchmark method on a corpus.
///
/// `max_windows` caps the number of training windows (the label-budget knob
/// of Figure 3); `None` uses the full corpus.
pub fn fit_method(
    name: MethodName,
    corpus: &Corpus,
    max_windows: Option<usize>,
    speed: SpeedPreset,
) -> FittedMethod {
    match name {
        MethodName::Camal => {
            let m = CamalMethod::fit(corpus, max_windows, &speed.camal_config());
            FittedMethod {
                labels_used: m.labels_used(),
                localizer: Box::new(m),
            }
        }
        MethodName::WeakSliding => {
            let m = WeakSliding::fit(corpus, max_windows, &speed.weak_config());
            FittedMethod {
                labels_used: m.labels_used(),
                localizer: Box::new(m),
            }
        }
        strong => {
            let arch = archs::by_name(strong.display(), 11)
                .expect("strong method names map to architectures");
            let m = StrongLocalizer::fit(
                strong.display(),
                arch,
                corpus,
                max_windows,
                &speed.seq_config(),
            );
            FittedMethod {
                labels_used: m.labels_used(),
                localizer: Box::new(m),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_datasets::{ApplianceKind, Dataset, DatasetPreset};

    fn corpus() -> Corpus {
        let ds = Dataset::generate(SpeedPreset::Test.dataset_config(DatasetPreset::UkdaleLike));
        let mut c = Corpus::build(&ds, ApplianceKind::Kettle, 120);
        c.balance_train(2);
        c
    }

    #[test]
    fn method_names_round_trip() {
        for m in ALL_METHODS {
            assert_eq!(MethodName::parse(m.display()), Some(m));
        }
        assert_eq!(MethodName::parse("camal"), Some(MethodName::Camal));
        assert_eq!(MethodName::parse("LSTM"), None);
        assert_eq!(MethodName::Camal.supervision(), Supervision::Weak);
        assert_eq!(MethodName::Fcn.supervision(), Supervision::Strong);
    }

    #[test]
    fn every_method_fits_and_predicts() {
        let c = corpus();
        for name in ALL_METHODS {
            let fitted = fit_method(name, &c, Some(4), SpeedPreset::Test);
            assert_eq!(fitted.localizer.name(), name.display());
            let pred = fitted.localizer.predict(&c.test[0].values);
            assert_eq!(pred.status.len(), c.test[0].values.len(), "{name:?}");
            assert!((0.0..=1.0).contains(&pred.probability), "{name:?}");
            // Label accounting follows the supervision style.
            match name.supervision() {
                Supervision::Weak => assert_eq!(fitted.labels_used, 4),
                Supervision::Strong => assert_eq!(fitted.labels_used, 4 * 120),
            }
        }
    }

    #[test]
    fn camal_adapter_matches_direct_model() {
        let c = corpus();
        let m = CamalMethod::fit(&c, None, &ds_camal::CamalConfig::fast_test());
        let direct = m.model().localize(&c.test[0].values);
        let adapted = m.predict(&c.test[0].values);
        assert_eq!(adapted.status, direct.status);
        assert_eq!(adapted.probability, direct.detection.probability);
    }
}
