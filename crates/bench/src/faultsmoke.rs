//! The `DS_FAULT` smoke stage behind the perf binary.
//!
//! Under an injected fault plan the serving path must uphold the
//! degradation contract end to end: no panic, every missing reading
//! surfaces as [`Status::Unknown`], the frozen and mutable paths agree,
//! and aligned windows the faults did not touch keep **bit-identical**
//! decisions against the unfaulted run. CI drives this with
//! `DS_FAULT=gaps:0.05,spikes:0.01` and gates on the report line.
//!
//! [`Status::Unknown`]: ds_timeseries::Status::Unknown

use ds_camal::{Camal, CamalConfig};
use ds_datasets::labels::Corpus;
use ds_datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
use ds_timeseries::faults::FaultPlan;
use ds_timeseries::TimeSeries;

/// Outcome of one fault smoke run, for the CI log line.
#[derive(Debug, Clone, Copy)]
pub struct FaultSmoke {
    /// Aligned windows no fault touched (compared bit-for-bit).
    pub clean_windows: usize,
    /// Aligned windows with at least one faulted sample.
    pub degraded_windows: usize,
    /// `Unknown` timesteps in the faulted prediction.
    pub unknown_samples: usize,
    /// Decision mismatches inside untouched windows (must be 0).
    pub decision_flips: usize,
}

impl FaultSmoke {
    /// One-line summary for the CI log.
    pub fn render(&self) -> String {
        format!(
            "fault smoke: {} clean windows bit-identical, {} degraded windows, \
             {} unknown samples, {} decision flips",
            self.clean_windows, self.degraded_windows, self.unknown_samples, self.decision_flips
        )
    }
}

/// Train a small model, fault a complete series with `plan`, and assert
/// the degradation contract on both serving paths.
///
/// # Panics
/// Panics when the contract is violated — the smoke stage treats any
/// violation as a CI failure.
pub fn run(plan: &FaultPlan) -> FaultSmoke {
    let window = 120usize;
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
    let mut corpus = Corpus::build(&ds, ApplianceKind::Kettle, window);
    corpus.balance_train(2);
    let camal = Camal::train(&corpus, &CamalConfig::fast_test());
    let mut frozen = camal.freeze();

    // A complete series (gap-free corpus windows plus a ragged 50-sample
    // tail) so every `Unknown` afterwards is attributable to the plan.
    let mut values: Vec<f32> = corpus
        .test
        .iter()
        .take(6)
        .flat_map(|w| w.values.iter().copied())
        .collect();
    values.extend(&corpus.train[0].values[..50]);
    let clean = TimeSeries::from_values(0, 60, values);
    assert!(!clean.has_missing(), "smoke series must start complete");
    let faulted = plan.apply(&clean);

    let clean_status = camal.predict_status_series(&clean, window);
    let mutable = camal.predict_status_series(&faulted.series, window);
    let frozen_status = frozen.predict_status_series(&faulted.series, window);
    assert_eq!(
        mutable.states(),
        frozen_status.states(),
        "frozen and mutable serving paths disagree under faults"
    );

    let len = faulted.series.len();
    for i in 0..len {
        if faulted.missing[i] {
            assert!(
                mutable.states()[i].is_unknown(),
                "missing sample {i} served a fabricated decision"
            );
        }
    }

    // Aligned windows untouched by any fault see bit-identical input in
    // both runs (truncation only removes the tail), so their decisions
    // must match the unfaulted run exactly.
    let mut smoke = FaultSmoke {
        clean_windows: 0,
        degraded_windows: 0,
        unknown_samples: mutable.unknown_count(),
        decision_flips: 0,
    };
    for lo in (0..(len / window) * window).step_by(window) {
        let touched = (lo..lo + window).any(|i| faulted.touched(i));
        if touched {
            smoke.degraded_windows += 1;
            continue;
        }
        smoke.clean_windows += 1;
        for i in lo..lo + window {
            if mutable.states()[i] != clean_status.states()[i] {
                smoke.decision_flips += 1;
            }
        }
    }
    assert_eq!(
        smoke.decision_flips, 0,
        "faults flipped decisions inside untouched windows"
    );
    smoke
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_holds_under_the_ci_plan() {
        let plan = FaultPlan::parse("gaps:0.05,spikes:0.01").unwrap();
        let s = run(&plan);
        assert_eq!(s.decision_flips, 0);
        assert!(s.unknown_samples > 0, "gaps must abstain somewhere");
        assert!(s.degraded_windows > 0);
        assert!(s.render().contains("0 decision flips"));
    }
}
