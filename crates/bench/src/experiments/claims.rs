//! The §II-C headline claims, computed from a Figure 3 result:
//!
//! 1. *"our method is 2.2× better regarding F1-Score accuracy than the only
//!    other weakly supervised baseline"* → [`ClaimsReport::weak_f1_ratio`];
//! 2. *"to achieve the same performance as CamAL, NILM-based approaches
//!    require 5200× more labels"* → [`ClaimsReport::label_ratio`].

use crate::experiments::fig3::Fig3Result;
use ds_metrics::labels::{labels_to_reach, EfficiencyPoint};
use serde::{Deserialize, Serialize};

/// The two claims evaluated against this reproduction's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClaimsReport {
    /// CamAL's best localization F1 and label count.
    pub camal: EfficiencyPoint,
    /// The CamAL operating point used for the label-ratio claim (the point
    /// maximizing the weak method's label advantage).
    pub camal_ratio_point: EfficiencyPoint,
    /// The weak baseline's best F1.
    pub weak_baseline_f1: f64,
    /// `CamAL F1 / weak baseline F1` (paper: ≈ 2.2).
    pub weak_f1_ratio: Option<f64>,
    /// Labels the best strong method needed to reach CamAL's F1, divided by
    /// CamAL's label count (paper: ≈ 5200). `None` when no strong method
    /// reached CamAL inside the sweep — reported as a lower bound instead.
    pub label_ratio: Option<f64>,
    /// Lower bound on the label ratio when no strong method caught up:
    /// the largest strong budget swept, divided by CamAL's labels.
    pub label_ratio_lower_bound: f64,
}

/// Compute the claims from a Figure 3 result.
pub fn compute(fig3: &Fig3Result) -> ClaimsReport {
    let camal = fig3
        .camal_best()
        .expect("figure 3 result always contains a CamAL curve");
    let weak_baseline_f1 = fig3
        .curve("WeakSliding")
        .map(|c| c.points.iter().map(|p| p.f1).fold(0.0, f64::max))
        .unwrap_or(0.0);
    let weak_f1_ratio = (weak_baseline_f1 > 0.0).then(|| camal.f1 / weak_baseline_f1);

    // Pool every strong curve, then find the operating point at which the
    // weak method's advantage is largest: for each CamAL point, how many
    // labels does the cheapest strong configuration matching its F1 cost,
    // relative to CamAL's? (The paper's 5200× is this trade-off at CamAL's
    // low-label operating point.)
    let strong_points: Vec<EfficiencyPoint> = fig3
        .curves
        .iter()
        .filter(|c| !c.weak)
        .flat_map(|c| c.points.iter().cloned())
        .collect();
    let mut best_ratio: Option<(f64, EfficiencyPoint)> = None;
    for p in &fig3
        .curve("CamAL")
        .map(|c| c.points.clone())
        .unwrap_or_default()
    {
        if let Some(strong_labels) = labels_to_reach(&strong_points, p.f1) {
            let ratio = strong_labels as f64 / p.labels.max(1) as f64;
            if best_ratio.as_ref().is_none_or(|(r, _)| ratio > *r) {
                best_ratio = Some((ratio, *p));
            }
        }
    }
    let max_strong_budget = strong_points.iter().map(|p| p.labels).max().unwrap_or(0);
    let (label_ratio, ratio_point) = match best_ratio {
        Some((r, p)) => (Some(r), p),
        None => (None, camal),
    };
    ClaimsReport {
        camal,
        camal_ratio_point: ratio_point,
        weak_baseline_f1,
        weak_f1_ratio,
        label_ratio,
        label_ratio_lower_bound: max_strong_budget as f64
            / fig3
                .curve("CamAL")
                .and_then(|c| c.points.iter().map(|p| p.labels).min())
                .unwrap_or(1)
                .max(1) as f64,
    }
}

/// Render the claims report.
pub fn render(report: &ClaimsReport) -> String {
    let mut out = String::from("§II-C claims check\n\n");
    out.push_str(&format!(
        "CamAL: localization F1 {:.3} using {} weak labels\n",
        report.camal.f1, report.camal.labels
    ));
    out.push_str(&format!(
        "Weak baseline best F1: {:.3}\n",
        report.weak_baseline_f1
    ));
    match report.weak_f1_ratio {
        Some(r) => out.push_str(&format!(
            "CamAL / weak baseline F1 ratio: {r:.2}x   (paper: 2.2x)\n"
        )),
        None => out.push_str("weak baseline scored 0: ratio undefined\n"),
    }
    match report.label_ratio {
        Some(r) => out.push_str(&format!(
            "labels for a strong method to match CamAL (F1 {:.3} @ {} labels): {r:.0}x more   (paper: 5200x)\n",
            report.camal_ratio_point.f1, report.camal_ratio_point.labels
        )),
        None => out.push_str(&format!(
            "no strong method matched CamAL inside the sweep: ratio > {:.0}x   (paper: 5200x)\n",
            report.label_ratio_lower_bound
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig3::{Fig3Result, MethodCurve};

    fn synthetic_fig3() -> Fig3Result {
        let point = |labels, f1| EfficiencyPoint { labels, f1 };
        Fig3Result {
            dataset: "IDEAL".into(),
            appliance: "Dishwasher".into(),
            window_samples: 360,
            curves: vec![
                MethodCurve {
                    method: "CamAL".into(),
                    weak: true,
                    points: vec![point(100, 0.74), point(400, 0.75)],
                },
                MethodCurve {
                    method: "WeakSliding".into(),
                    weak: true,
                    points: vec![point(400, 0.34)],
                },
                MethodCurve {
                    method: "FCN".into(),
                    weak: false,
                    points: vec![point(36_000, 0.4), point(2_080_000, 0.76)],
                },
            ],
        }
    }

    #[test]
    fn ratios_match_hand_computation() {
        let report = compute(&synthetic_fig3());
        assert_eq!(report.camal.f1, 0.75);
        assert_eq!(report.camal.labels, 400);
        assert!((report.weak_f1_ratio.unwrap() - 0.75 / 0.34).abs() < 1e-9);
        // The best trade-off point is CamAL@(100, 0.74): FCN only reaches
        // 0.74 at 2.08M labels -> ratio 20800 (beats 5200 at the 400 point).
        assert_eq!(report.camal_ratio_point.labels, 100);
        assert!((report.label_ratio.unwrap() - 2_080_000.0 / 100.0).abs() < 1e-9);
        let text = render(&report);
        assert!(text.contains("2.2x"));
        assert!(text.contains("5200x"));
    }

    #[test]
    fn unmatched_strong_reports_lower_bound() {
        let mut fig3 = synthetic_fig3();
        fig3.curves[2].points = vec![EfficiencyPoint {
            labels: 36_000,
            f1: 0.4,
        }];
        let report = compute(&fig3);
        assert!(report.label_ratio.is_none());
        // Lower bound uses CamAL's cheapest point (100 labels).
        assert!((report.label_ratio_lower_bound - 360.0).abs() < 1e-9);
        assert!(render(&report).contains("ratio > 360"));
    }
}
