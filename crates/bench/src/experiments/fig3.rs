//! **Figure 3** — localization accuracy vs number of labels used for
//! training (the Dishwasher case of the IDEAL dataset in the paper).
//!
//! Weak methods (CamAL, WeakSliding) pay one label per window; strong
//! seq2seq methods pay `window_len` labels per window. Sweeping the number
//! of training windows therefore traces each family's label-efficiency
//! curve; the paper's headline shape is CamAL's near-flat curve sitting far
//! above the strong methods until they have consumed orders of magnitude
//! more labels.

use crate::experiments::evaluate;
use crate::methods::{fit_method, MethodName, ALL_METHODS};
use crate::speed::SpeedPreset;
use ds_datasets::labels::Corpus;
use ds_datasets::{ApplianceKind, Dataset, DatasetPreset};
use ds_metrics::labels::EfficiencyPoint;
use serde::{Deserialize, Serialize};

/// Configuration of the Figure 3 sweep.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Dataset preset (paper: IDEAL).
    pub preset: DatasetPreset,
    /// Target appliance (paper: Dishwasher).
    pub appliance: ApplianceKind,
    /// Training-window budgets swept for every method.
    pub budgets: Vec<usize>,
    /// Fidelity of models and datasets.
    pub speed: SpeedPreset,
}

impl Fig3Config {
    /// The paper's configuration at a given fidelity.
    pub fn paper(speed: SpeedPreset) -> Fig3Config {
        Fig3Config {
            preset: DatasetPreset::IdealLike,
            appliance: ApplianceKind::Dishwasher,
            budgets: match speed {
                SpeedPreset::Test => vec![2, 6],
                SpeedPreset::Default => vec![2, 8, 24, 64],
                SpeedPreset::Full => vec![2, 8, 32, 128, 512],
            },
            speed,
        }
    }
}

/// One method's label-efficiency curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodCurve {
    /// Method display name.
    pub method: String,
    /// Whether the method is weakly supervised.
    pub weak: bool,
    /// Points of `(labels consumed, localization F1)`.
    pub points: Vec<EfficiencyPoint>,
}

/// The full Figure 3 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Dataset name.
    pub dataset: String,
    /// Appliance name.
    pub appliance: String,
    /// Window length in samples.
    pub window_samples: usize,
    /// One curve per method.
    pub curves: Vec<MethodCurve>,
}

impl Fig3Result {
    /// The curve of one method, by display name.
    pub fn curve(&self, method: &str) -> Option<&MethodCurve> {
        self.curves.iter().find(|c| c.method == method)
    }

    /// CamAL's best F1 and the labels it consumed there.
    pub fn camal_best(&self) -> Option<EfficiencyPoint> {
        self.curve("CamAL")?
            .points
            .iter()
            .cloned()
            .max_by(|a, b| a.f1.partial_cmp(&b.f1).expect("finite"))
    }
}

/// Run the Figure 3 sweep.
pub fn run(cfg: &Fig3Config) -> Fig3Result {
    let _span = ds_obs::span!("fig3");
    let corpus = {
        let _span = ds_obs::span!("prepare_corpus");
        let dataset = Dataset::generate(cfg.speed.dataset_config(cfg.preset));
        let window = cfg.speed.window_samples();
        let mut corpus = Corpus::build(&dataset, cfg.appliance, window);
        corpus.balance_train(3);
        corpus
    };
    run_on_corpus(cfg, &corpus)
}

/// Run the sweep over a prepared corpus (separated for testing).
///
/// Besides the configured budgets, every method is additionally evaluated
/// at the full corpus size — the "all available weak labels" operating
/// point at which the paper reports CamAL.
pub fn run_on_corpus(cfg: &Fig3Config, corpus: &Corpus) -> Fig3Result {
    let mut budgets = cfg.budgets.clone();
    budgets.push(corpus.train.len());
    budgets.sort_unstable();
    budgets.dedup();
    let mut curves = Vec::new();
    for method in ALL_METHODS {
        let _span = ds_obs::span!("fig3_method");
        let mut points = Vec::new();
        for &budget in &budgets {
            let budget = budget.min(corpus.train.len()).max(1);
            let fitted = fit_method(method, corpus, Some(budget), cfg.speed);
            let (_, loc) = evaluate(fitted.localizer.as_ref(), &corpus.test);
            ds_obs::event!(
                "fig3_point",
                method = method.display(),
                budget = budget,
                labels = fitted.labels_used,
                f1 = loc.f1,
            );
            points.push(EfficiencyPoint {
                labels: fitted.labels_used,
                f1: loc.f1,
            });
        }
        // Deduplicate saturated budgets (budget > corpus size).
        points.dedup_by_key(|p| p.labels);
        curves.push(MethodCurve {
            method: method.display().to_string(),
            weak: matches!(method, MethodName::Camal | MethodName::WeakSliding),
            points,
        });
    }
    Fig3Result {
        dataset: cfg.preset.name().to_string(),
        appliance: cfg.appliance.name().to_string(),
        window_samples: corpus.window_samples,
        curves,
    }
}

/// Render the result as the text analogue of Figure 3.
pub fn render(result: &Fig3Result) -> String {
    let mut out = format!(
        "Figure 3 — localization F1 vs training labels ({} / {})\n\n",
        result.appliance, result.dataset
    );
    let mut rows = Vec::new();
    for curve in &result.curves {
        for p in &curve.points {
            rows.push(vec![
                curve.method.clone(),
                if curve.weak { "weak" } else { "strong" }.to_string(),
                crate::report::format_labels(p.labels),
                format!("{:.3}", p.f1),
            ]);
        }
    }
    out.push_str(&crate::report::text_table(
        &["Method", "Supervision", "Labels", "Localization F1"],
        &rows,
    ));
    out.push('\n');
    // The plot itself, one marker per method.
    let markers = ['C', 'W', 'F', 'D', 'U', 'T', 'S'];
    let curve_data: Vec<crate::report::LabelCurve<'_>> = result
        .curves
        .iter()
        .zip(markers)
        .map(|(c, m)| {
            (
                m,
                c.method.as_str(),
                c.points.iter().map(|p| (p.labels, p.f1)).collect(),
            )
        })
        .collect();
    out.push_str(&crate::report::ascii_curves(&curve_data, 100, 16));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_curves() {
        let cfg = Fig3Config {
            preset: DatasetPreset::UkdaleLike,
            appliance: ApplianceKind::Kettle,
            budgets: vec![2, 4],
            speed: SpeedPreset::Test,
        };
        let result = run(&cfg);
        assert_eq!(result.curves.len(), 7);
        for curve in &result.curves {
            assert!(!curve.points.is_empty(), "{} has no points", curve.method);
            for p in &curve.points {
                assert!((0.0..=1.0).contains(&p.f1));
                assert!(p.labels > 0);
            }
        }
        // Label-currency invariant: strong methods consume window_len times
        // more labels at the same budget.
        let camal = result.curve("CamAL").unwrap();
        let fcn = result.curve("FCN").unwrap();
        assert_eq!(
            fcn.points[0].labels,
            camal.points[0].labels * result.window_samples as u64
        );
        assert!(result.camal_best().is_some());
        let text = render(&result);
        assert!(text.contains("Figure 3"));
        assert!(text.contains("CamAL"));
    }
}
