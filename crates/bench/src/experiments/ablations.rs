//! Ablations of CamAL's design choices (`DESIGN.md` §5): each row retrains
//! or re-evaluates the pipeline with one switch flipped and reports the
//! localization F1 delta against the paper configuration.

use crate::experiments::evaluate;
use crate::methods::CamalMethod;
use crate::speed::SpeedPreset;
use ds_camal::{CamalConfig, LocalizerConfig};
use ds_datasets::labels::Corpus;
use ds_datasets::{ApplianceKind, Dataset, DatasetPreset};
use serde::{Deserialize, Serialize};

/// One ablation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Window-level detection F1.
    pub detection_f1: f64,
    /// Per-timestep localization F1.
    pub localization_f1: f64,
}

/// The full ablation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationReport {
    /// Dataset the ablation ran on.
    pub dataset: String,
    /// Appliance the ablation targeted.
    pub appliance: String,
    /// All variant rows, baseline first.
    pub rows: Vec<AblationRow>,
}

/// Build the list of ablated configurations (label, config).
pub fn variants(speed: SpeedPreset) -> Vec<(String, CamalConfig)> {
    let base = speed.camal_config();
    let mut out = vec![("paper default".to_string(), base.clone())];
    // Ensemble size: single member per kernel.
    for &k in &base.kernel_sizes {
        out.push((
            format!("single member k={k}"),
            CamalConfig {
                kernel_sizes: vec![k],
                ..base.clone()
            },
        ));
    }
    out.push((
        "no CAM normalization".into(),
        CamalConfig {
            localizer: LocalizerConfig {
                normalize_cams: false,
                ..base.localizer.clone()
            },
            ..base.clone()
        },
    ));
    out.push((
        "raw CAM threshold (no attention)".into(),
        CamalConfig {
            localizer: LocalizerConfig {
                use_attention: false,
                ..base.localizer.clone()
            },
            ..base.clone()
        },
    ));
    out.push((
        "no detection gate".into(),
        CamalConfig {
            localizer: LocalizerConfig {
                gate_on_detection: false,
                ..base.localizer.clone()
            },
            ..base.clone()
        },
    ));
    out.push((
        "CAM magnitude gate 0.5 (extension)".into(),
        CamalConfig {
            localizer: LocalizerConfig {
                cam_gate: 0.5,
                ..base.localizer.clone()
            },
            ..base.clone()
        },
    ));
    out
}

/// Run the ablation suite on one (preset, appliance) pair.
pub fn run(preset: DatasetPreset, appliance: ApplianceKind, speed: SpeedPreset) -> AblationReport {
    let _span = ds_obs::span!("ablations");
    let dataset = Dataset::generate(speed.dataset_config(preset));
    let mut corpus = Corpus::build(&dataset, appliance, speed.window_samples());
    corpus.balance_train(3);
    let mut rows = Vec::new();
    for (label, config) in variants(speed) {
        let _span = ds_obs::span!("variant");
        let method = CamalMethod::fit(&corpus, None, &config);
        let (det, loc) = evaluate(&method, &corpus.test);
        ds_obs::event!(
            "ablation_variant",
            variant = label.as_str(),
            detection_f1 = det.f1,
            localization_f1 = loc.f1,
        );
        rows.push(AblationRow {
            variant: label,
            detection_f1: det.f1,
            localization_f1: loc.f1,
        });
    }
    // Training-free floor: the classic event-matching heuristic, zero labels.
    let heuristic = ds_baselines::extensions::EdgeHeuristic::new(appliance);
    let (det, loc) = evaluate(&heuristic, &corpus.test);
    rows.push(AblationRow {
        variant: "EdgeHeuristic (0 labels, reference floor)".into(),
        detection_f1: det.f1,
        localization_f1: loc.f1,
    });
    AblationReport {
        dataset: preset.name().to_string(),
        appliance: appliance.name().to_string(),
        rows,
    }
}

/// Render the report as text.
pub fn render(report: &AblationReport) -> String {
    let mut out = format!(
        "CamAL ablations — {} / {}\n\n",
        report.appliance, report.dataset
    );
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                format!("{:.3}", r.detection_f1),
                format!("{:.3}", r.localization_f1),
            ]
        })
        .collect();
    out.push_str(&crate::report::text_table(
        &["Variant", "Detection F1", "Localization F1"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_list_covers_design_choices() {
        let vs = variants(SpeedPreset::Test);
        let labels: Vec<&str> = vs.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels[0].contains("paper default"));
        assert!(labels.iter().any(|l| l.contains("single member")));
        assert!(labels.iter().any(|l| l.contains("no CAM normalization")));
        assert!(labels.iter().any(|l| l.contains("no attention")));
        assert!(labels.iter().any(|l| l.contains("no detection gate")));
        assert!(labels.iter().any(|l| l.contains("magnitude gate")));
        // Single-member variants really shrink the ensemble.
        let single = vs.iter().find(|(l, _)| l.contains("single")).unwrap();
        assert_eq!(single.1.kernel_sizes.len(), 1);
    }

    #[test]
    fn ablation_run_produces_rows() {
        let report = run(
            DatasetPreset::UkdaleLike,
            ApplianceKind::Kettle,
            SpeedPreset::Test,
        );
        // All CamAL variants plus the training-free EdgeHeuristic floor.
        assert_eq!(report.rows.len(), variants(SpeedPreset::Test).len() + 1);
        assert!(report
            .rows
            .last()
            .unwrap()
            .variant
            .contains("EdgeHeuristic"));
        for row in &report.rows {
            assert!((0.0..=1.0).contains(&row.localization_f1), "{row:?}");
        }
        let text = render(&report);
        assert!(text.contains("ablations"));
        assert!(text.contains("paper default"));
    }
}
