//! Experiment implementations, one module per paper artifact.

pub mod ablations;
pub mod claims;
pub mod fig3;
pub mod table;

use ds_baselines::Localizer;
use ds_datasets::labels::LabeledWindow;
use ds_metrics::classification::score_detection;
use ds_metrics::localization::score_status_micro;
use ds_metrics::Measures;

/// Evaluate a fitted method on test windows: window-level **detection**
/// (truth = "was the appliance actually on inside the window") and
/// per-timestep **localization** (micro-averaged over all test timesteps).
pub fn evaluate(method: &dyn Localizer, test: &[LabeledWindow]) -> (Measures, Measures) {
    assert!(!test.is_empty(), "evaluation needs test windows");
    let mut det_pred = Vec::with_capacity(test.len());
    let mut det_truth = Vec::with_capacity(test.len());
    let mut statuses: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(test.len());
    for w in test {
        let pred = method.predict(&w.values);
        det_pred.push(pred.probability > 0.5);
        det_truth.push(w.strong.contains(&1));
        statuses.push((pred.status, w.strong.clone()));
    }
    let detection = score_detection(&det_pred, &det_truth);
    let localization =
        score_status_micro(statuses.iter().map(|(p, t)| (p.as_slice(), t.as_slice())));
    (detection, localization)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_baselines::WindowPrediction;
    use ds_metrics::labels::Supervision;

    struct Oracle;
    impl Localizer for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn supervision(&self) -> Supervision {
            Supervision::Weak
        }
        fn predict(&self, window: &[f32]) -> WindowPrediction {
            // Knows the simulator's trick: in these tests ON ⇔ value > 0.5.
            let status: Vec<u8> = window.iter().map(|&v| u8::from(v > 0.5)).collect();
            let probability = if status.contains(&1) { 0.9 } else { 0.1 };
            WindowPrediction {
                probability,
                status,
            }
        }
    }

    fn window(values: Vec<f32>) -> LabeledWindow {
        let strong: Vec<u8> = values.iter().map(|&v| u8::from(v > 0.5)).collect();
        let weak = strong.contains(&1);
        LabeledWindow {
            house_id: 0,
            start: 0,
            values,
            weak,
            strong,
        }
    }

    #[test]
    fn oracle_scores_perfectly() {
        let test = vec![
            window(vec![0.0, 1.0, 1.0, 0.0]),
            window(vec![0.0, 0.0, 0.0, 0.0]),
        ];
        let (det, loc) = evaluate(&Oracle, &test);
        assert_eq!(det.accuracy, 1.0);
        assert_eq!(loc.accuracy, 1.0);
        assert_eq!(loc.f1, 1.0);
    }

    struct AllOff;
    impl Localizer for AllOff {
        fn name(&self) -> &str {
            "alloff"
        }
        fn supervision(&self) -> Supervision {
            Supervision::Weak
        }
        fn predict(&self, window: &[f32]) -> WindowPrediction {
            WindowPrediction::all_off(window.len(), 0.0)
        }
    }

    #[test]
    fn all_off_scores_zero_recall() {
        let test = vec![window(vec![0.0, 1.0, 1.0, 0.0])];
        let (det, loc) = evaluate(&AllOff, &test);
        assert_eq!(det.recall, 0.0);
        assert_eq!(loc.recall, 0.0);
        assert!(loc.accuracy > 0.0); // the off timesteps are still right
    }
}
