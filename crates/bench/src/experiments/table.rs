//! **Benchmark frame grid** (§III / Figure 5-B.1): detection and
//! localization measures for every dataset × appliance × method cell,
//! producing the JSON table the DeviceScope app browses.

use crate::experiments::evaluate;
use crate::methods::{fit_method, MethodName};
use crate::speed::SpeedPreset;
use ds_datasets::labels::Corpus;
use ds_datasets::{ApplianceKind, Dataset, DatasetPreset};
use ds_metrics::aggregate::{BenchmarkCell, BenchmarkTable};

/// Configuration of a grid run.
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Dataset presets to include.
    pub presets: Vec<DatasetPreset>,
    /// Appliances to include.
    pub appliances: Vec<ApplianceKind>,
    /// Methods to include.
    pub methods: Vec<MethodName>,
    /// Fidelity.
    pub speed: SpeedPreset,
}

impl TableConfig {
    /// The full paper grid at a fidelity: 3 datasets × 5 appliances × 7
    /// methods.
    pub fn paper(speed: SpeedPreset) -> TableConfig {
        TableConfig {
            presets: DatasetPreset::ALL.to_vec(),
            appliances: ApplianceKind::ALL.to_vec(),
            methods: crate::methods::ALL_METHODS.to_vec(),
            speed,
        }
    }

    /// A single-dataset slice, for quicker runs.
    pub fn one_dataset(preset: DatasetPreset, speed: SpeedPreset) -> TableConfig {
        TableConfig {
            presets: vec![preset],
            ..TableConfig::paper(speed)
        }
    }
}

/// Run the grid.
pub fn run(cfg: &TableConfig) -> BenchmarkTable {
    let _span = ds_obs::span!("benchmark_table");
    let mut table = BenchmarkTable::new();
    for &preset in &cfg.presets {
        let _span = ds_obs::span!("dataset");
        let dataset = Dataset::generate(cfg.speed.dataset_config(preset));
        for &appliance in &cfg.appliances {
            let mut corpus = Corpus::build(&dataset, appliance, cfg.speed.window_samples());
            corpus.balance_train(3);
            if corpus.train.is_empty() || corpus.test.is_empty() {
                ds_obs::event!(
                    "table_cell_skipped",
                    dataset = preset.name(),
                    appliance = appliance.name(),
                );
                continue; // a degenerate tiny split: skip the cell honestly
            }
            for &method in &cfg.methods {
                let _span = ds_obs::span!("cell");
                let fitted = fit_method(method, &corpus, None, cfg.speed);
                let (detection, localization) = evaluate(fitted.localizer.as_ref(), &corpus.test);
                ds_obs::event!(
                    "table_cell",
                    dataset = preset.name(),
                    appliance = appliance.name(),
                    method = method.display(),
                    detection_f1 = detection.f1,
                    localization_f1 = localization.f1,
                );
                table.push(BenchmarkCell {
                    dataset: preset.name().to_string(),
                    appliance: appliance.name().to_string(),
                    method: method.display().to_string(),
                    detection,
                    localization,
                    labels_used: fitted.labels_used,
                });
            }
        }
    }
    table
}

/// Render the grid as text (dataset-major, the app's B.1 layout).
pub fn render(table: &BenchmarkTable) -> String {
    let mut out = String::from("Benchmark grid — detection | localization (F1), labels\n\n");
    let mut rows = Vec::new();
    for c in &table.cells {
        rows.push(vec![
            c.dataset.clone(),
            c.appliance.clone(),
            c.method.clone(),
            format!("{:.3}", c.detection.f1),
            format!("{:.3}", c.detection.balanced_accuracy),
            format!("{:.3}", c.localization.f1),
            format!("{:.3}", c.localization.balanced_accuracy),
            crate::report::format_labels(c.labels_used),
        ]);
    }
    out.push_str(&crate::report::text_table(
        &[
            "Dataset",
            "Appliance",
            "Method",
            "Det F1",
            "Det BAcc",
            "Loc F1",
            "Loc BAcc",
            "Labels",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_produces_cells() {
        let cfg = TableConfig {
            presets: vec![DatasetPreset::UkdaleLike],
            appliances: vec![ApplianceKind::Kettle],
            methods: vec![MethodName::Camal, MethodName::WeakSliding],
            speed: SpeedPreset::Test,
        };
        let table = run(&cfg);
        assert_eq!(table.cells.len(), 2);
        let camal = table.get("UKDALE", "Kettle", "CamAL").unwrap();
        assert!(camal.labels_used > 0);
        for v in [
            camal.detection.f1,
            camal.detection.accuracy,
            camal.localization.f1,
            camal.localization.accuracy,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
        let text = render(&table);
        assert!(text.contains("UKDALE"));
        assert!(text.contains("WeakSliding"));
    }
}
