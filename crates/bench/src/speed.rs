//! Speed presets: the same experiments at three fidelity levels, so tests
//! run in seconds, the default harness in minutes, and a paper-scale run
//! when time allows.

use ds_camal::CamalConfig;
use ds_datasets::{DatasetConfig, DatasetPreset};
use ds_neural::train::TrainConfig;
use serde::{Deserialize, Serialize};

/// Experiment fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpeedPreset {
    /// Seconds: tiny datasets and models (unit/integration tests).
    Test,
    /// Minutes: the default for the harness binaries.
    Default,
    /// Paper-scale datasets and models.
    Full,
}

impl SpeedPreset {
    /// Parse a CLI flag value.
    pub fn parse(s: &str) -> Option<SpeedPreset> {
        match s.to_ascii_lowercase().as_str() {
            "test" => Some(SpeedPreset::Test),
            "default" => Some(SpeedPreset::Default),
            "full" => Some(SpeedPreset::Full),
            _ => None,
        }
    }

    /// Dataset generation parameters for a preset at this fidelity.
    pub fn dataset_config(self, preset: DatasetPreset) -> DatasetConfig {
        match self {
            SpeedPreset::Test => DatasetConfig::tiny(preset, 4, 2),
            SpeedPreset::Default => DatasetConfig::tiny(preset, 6, 7),
            SpeedPreset::Full => preset.config(),
        }
    }

    /// Window length in samples (at the common 1-minute frequency).
    pub fn window_samples(self) -> usize {
        match self {
            SpeedPreset::Test => 120,    // 2 h
            SpeedPreset::Default => 360, // 6 h — a GUI choice
            SpeedPreset::Full => 360,
        }
    }

    /// CamAL configuration at this fidelity.
    pub fn camal_config(self) -> CamalConfig {
        match self {
            SpeedPreset::Test => CamalConfig::fast_test(),
            SpeedPreset::Default => CamalConfig {
                kernel_sizes: vec![5, 9, 15],
                channels: vec![8, 16],
                train: TrainConfig {
                    epochs: 12,
                    batch_size: 16,
                    ..TrainConfig::default()
                },
                ..CamalConfig::default()
            },
            SpeedPreset::Full => CamalConfig::default(),
        }
    }

    /// Seq2seq training configuration at this fidelity.
    pub fn seq_config(self) -> crate::methods::SeqCfg {
        use ds_baselines::seqnet::SeqTrainConfig;
        match self {
            SpeedPreset::Test => SeqTrainConfig {
                epochs: 4,
                batch_size: 8,
                ..SeqTrainConfig::default()
            },
            SpeedPreset::Default => SeqTrainConfig {
                epochs: 12,
                ..SeqTrainConfig::default()
            },
            SpeedPreset::Full => SeqTrainConfig {
                epochs: 25,
                ..SeqTrainConfig::default()
            },
        }
    }

    /// Classifier training configuration for the weak baseline.
    pub fn weak_config(self) -> TrainConfig {
        match self {
            SpeedPreset::Test => TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
            SpeedPreset::Default => TrainConfig {
                epochs: 12,
                ..TrainConfig::default()
            },
            SpeedPreset::Full => TrainConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_scaling() {
        assert_eq!(SpeedPreset::parse("test"), Some(SpeedPreset::Test));
        assert_eq!(SpeedPreset::parse("DEFAULT"), Some(SpeedPreset::Default));
        assert_eq!(SpeedPreset::parse("full"), Some(SpeedPreset::Full));
        assert_eq!(SpeedPreset::parse("warp"), None);
        let t = SpeedPreset::Test.dataset_config(DatasetPreset::IdealLike);
        let f = SpeedPreset::Full.dataset_config(DatasetPreset::IdealLike);
        assert!(t.num_houses < f.num_houses);
        assert!(SpeedPreset::Test.window_samples() < SpeedPreset::Default.window_samples());
        assert!(
            SpeedPreset::Test.camal_config().train.epochs
                < SpeedPreset::Full.camal_config().train.epochs
        );
    }
}
