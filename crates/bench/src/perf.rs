//! Sequential-vs-parallel performance harness for the ds-par substrate.
//!
//! Each case runs the same workload twice — once pinned to one worker
//! (`ds_par::set_threads(Some(1))`) and once on the configured team — and
//! records wall time, throughput in elements/sec, and the speedup. The
//! paths are timed with interleaved median-of-k sampling: iterations
//! alternate seq/par so host-load drift hits both equally, and each path
//! is scored by its median observed iteration, which shrugs off
//! interference spikes without rewarding one lucky sample. Before
//! timing, the two paths' outputs are compared **bit for bit**: the
//! substrate's contract is that parallelism never changes numerics, and
//! this harness enforces it on every run (a report with
//! `bit_identical: false` means the contract is broken, and
//! [`run_suite`] panics rather than produce one).
//!
//! The `perf` binary renders the suite as a table and persists it to
//! `results/BENCH_perf.json`; `benches/perf.rs` wraps the same workloads
//! in Criterion for trend tracking.

use ds_camal::localizer::localize_batch;
use ds_camal::{CamalConfig, LocalizerConfig, ResNetEnsemble};
use ds_neural::conv::Conv1d;
use ds_neural::tensor::Tensor;
use ds_neural::train::train_classifier_reference;
use ds_neural::VisitParams;
use serde::Serialize;
use std::time::Instant;

/// One sequential-vs-parallel measurement.
#[derive(Debug, Clone, Serialize)]
pub struct PerfCase {
    /// Workload name (`conv_forward`, `ensemble_predict`, `e2e_localize`,
    /// `train_epoch`).
    pub name: String,
    /// Elements produced per iteration (output samples of the workload).
    pub elements_per_iter: u64,
    /// Timed iterations per path.
    pub iters: u64,
    /// Sequential wall time for all iterations, seconds, projected from
    /// the median observed iteration (see the module docs).
    pub seq_secs: f64,
    /// Parallel wall time for all iterations, seconds, projected from
    /// the median observed iteration (see the module docs).
    pub par_secs: f64,
    /// Sequential throughput, elements per second.
    pub seq_elements_per_sec: f64,
    /// Parallel throughput, elements per second.
    pub par_elements_per_sec: f64,
    /// `seq_secs / par_secs` — > 1 means the parallel path is faster.
    pub speedup: f64,
    /// Whether the two paths produced bit-identical outputs (always true
    /// in a published report; the suite panics otherwise).
    pub bit_identical: bool,
}

/// The full suite, as persisted to `results/BENCH_perf.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// Worker-team size used for the parallel path.
    pub threads: usize,
    /// Whether this was the reduced smoke configuration (CI) or the full
    /// benchmark configuration.
    pub smoke: bool,
    /// The measurements.
    pub cases: Vec<PerfCase>,
}

/// Workload sizes, reduced under `--smoke` so CI stays fast.
#[derive(Debug, Clone, Copy)]
pub struct PerfScale {
    /// Batch rows (windows) per iteration.
    pub batch: usize,
    /// Samples per window.
    pub window: usize,
    /// Timed iterations per path.
    pub iters: usize,
}

impl PerfScale {
    /// CI-sized: a few seconds end to end.
    pub fn smoke() -> PerfScale {
        PerfScale {
            batch: 8,
            window: 180,
            iters: 2,
        }
    }

    /// Benchmark-sized: paper-scale 12 h windows.
    pub fn full() -> PerfScale {
        PerfScale {
            batch: 32,
            window: 720,
            iters: 5,
        }
    }
}

fn time_once<R>(mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

fn seq<R>(f: impl FnOnce() -> R) -> R {
    ds_par::set_threads(Some(1));
    let out = f();
    ds_par::set_threads(None);
    out
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Time the two paths with interleaved median-of-k sampling: the paths
/// alternate iteration by iteration (so slow host-load drift hits both
/// equally instead of whichever block ran second), and each path is
/// scored by its median observed iteration — robust to interference
/// spikes without rewarding one lucky sample. Returns projected totals
/// `(median_seq × iters, median_par × iters)`.
fn measure(iters: usize, mut seq_work: impl FnMut(), mut par_work: impl FnMut()) -> (f64, f64) {
    let mut seq_samples = Vec::with_capacity(iters);
    let mut par_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        seq_samples.push(seq(|| time_once(&mut seq_work)));
        par_samples.push(time_once(&mut par_work));
    }
    (
        (median(&mut seq_samples) * iters as f64).max(f64::MIN_POSITIVE),
        (median(&mut par_samples) * iters as f64).max(f64::MIN_POSITIVE),
    )
}

fn build_case(
    name: &str,
    elements_per_iter: u64,
    iters: usize,
    bit_identical: bool,
    seq_secs: f64,
    par_secs: f64,
) -> PerfCase {
    let total = (elements_per_iter * iters as u64) as f64;
    PerfCase {
        name: name.to_string(),
        elements_per_iter,
        iters: iters as u64,
        seq_secs,
        par_secs,
        seq_elements_per_sec: total / seq_secs,
        par_elements_per_sec: total / par_secs,
        speedup: seq_secs / par_secs,
        bit_identical,
    }
}

fn case(
    name: &str,
    elements_per_iter: u64,
    iters: usize,
    bit_identical: bool,
    mut work: impl FnMut(),
) -> PerfCase {
    let mut seq_samples = Vec::with_capacity(iters);
    let mut par_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        seq_samples.push(seq(|| time_once(&mut work)));
        par_samples.push(time_once(&mut work));
    }
    build_case(
        name,
        elements_per_iter,
        iters,
        bit_identical,
        (median(&mut seq_samples) * iters as f64).max(f64::MIN_POSITIVE),
        (median(&mut par_samples) * iters as f64).max(f64::MIN_POSITIVE),
    )
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Conv1d forward over a paper-scale layer (8→16 channels, k = 9).
fn conv_forward_case(scale: PerfScale) -> PerfCase {
    let conv = Conv1d::new(8, 16, 9, 1);
    let x = Tensor::from_data(
        scale.batch,
        8,
        scale.window,
        (0..scale.batch * 8 * scale.window)
            .map(|i| ((i % 97) as f32 - 48.0) * 0.021)
            .collect(),
    );
    let reference = seq(|| conv.infer(&x));
    let parallel = conv.infer(&x);
    let identical = bits(&reference.data) == bits(&parallel.data);
    assert!(identical, "conv forward: parallel output diverged");
    let elements = (scale.batch * 16 * scale.window) as u64;
    case("conv_forward", elements, scale.iters, identical, || {
        conv.infer(&x);
    })
}

/// Full-ensemble prediction (probabilities + CAMs, 4 members).
fn ensemble_predict_case(scale: PerfScale) -> PerfCase {
    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let x = Tensor::from_data(
        scale.batch,
        1,
        scale.window,
        (0..scale.batch * scale.window)
            .map(|i| ((i % 131) as f32) * 13.7)
            .collect(),
    );
    let reference = seq(|| ensemble.predict(&x));
    let parallel = ensemble.predict(&x);
    let identical = reference.len() == parallel.len()
        && reference.iter().zip(&parallel).all(|(a, b)| {
            bits(&a.probs) == bits(&b.probs)
                && a.cams.len() == b.cams.len()
                && a.cams
                    .iter()
                    .zip(&b.cams)
                    .all(|(ca, cb)| bits(ca) == bits(cb))
        });
    assert!(identical, "ensemble predict: parallel output diverged");
    let elements = (scale.batch * scale.window * ensemble.len()) as u64;
    case("ensemble_predict", elements, scale.iters, identical, || {
        ensemble.predict(&x);
    })
}

/// The end-to-end CamAL pipeline (steps 1–6) over a batch of windows.
fn e2e_localize_case(scale: PerfScale) -> PerfCase {
    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let loc_cfg = LocalizerConfig {
        gate_on_detection: false,
        ..LocalizerConfig::default()
    };
    let windows: Vec<Vec<f32>> = (0..scale.batch)
        .map(|w| {
            (0..scale.window)
                .map(|i| ((w * 13 + i) % 29) as f32 * 55.0 + (i as f32 * 0.11).sin() * 20.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = windows.iter().map(|w| w.as_slice()).collect();
    let reference = seq(|| localize_batch(&ensemble, &refs, &loc_cfg));
    let parallel = localize_batch(&ensemble, &refs, &loc_cfg);
    let identical = reference.len() == parallel.len()
        && reference.iter().zip(&parallel).all(|(a, b)| {
            bits(&a.cam) == bits(&b.cam)
                && a.status == b.status
                && a.detection.probability.to_bits() == b.detection.probability.to_bits()
        });
    assert!(identical, "e2e localize: parallel output diverged");
    let elements = (scale.batch * scale.window) as u64;
    case("e2e_localize", elements, scale.iters, identical, || {
        localize_batch(&ensemble, &refs, &loc_cfg);
    })
}

/// Deterministic parallel training of the paper's 4-member ensemble
/// (k ∈ {5, 7, 9, 15}) for two epochs: members fan out across the worker
/// team, layers split batches into fixed micro-batches, and gradients
/// tree-reduce in slot order.
///
/// Unlike the inference cases, the sequential twin here is the preserved
/// pre-workspace trainer: the legacy batching loop
/// ([`train_classifier_reference`]: per-batch window clones and input
/// re-allocation) with layer buffer reuse disabled
/// (`workspace::set_buffer_reuse(false)`), reproducing the historical
/// per-call allocation profile, pinned to one worker — i.e. the speedup
/// reads as "what replacing the legacy sequential trainer with the
/// zero-alloc data-parallel trainer buys". Bit-identity is checked three
/// ways — legacy sequential, new sequential, new parallel — over every
/// trained weight of every member plus the per-epoch losses, so the
/// number also certifies that the allocation-free rewrite reproduces the
/// legacy trainer exactly. (The corpus size is a multiple of the batch
/// size so the legacy loop's dropped-singleton bug is not in play.)
fn train_epoch_case(scale: PerfScale) -> PerfCase {
    let mut cfg = CamalConfig {
        channels: vec![4, 8],
        ..CamalConfig::default()
    };
    cfg.train.epochs = 2;
    cfg.train.batch_size = 4;
    cfg.train.patience = None;
    assert_eq!(
        scale.batch % cfg.train.batch_size,
        0,
        "corpus must split evenly so legacy and fixed batching agree"
    );
    let windows: Vec<Vec<f32>> = (0..scale.batch)
        .map(|w| {
            (0..scale.window)
                .map(|i| {
                    let base = ((w * 17 + i) % 23) as f32 * 0.04;
                    let burst = if w % 2 == 1 && i % 50 < 20 { 1.0 } else { 0.0 };
                    base + burst
                })
                .collect()
        })
        .collect();
    let labels: Vec<u8> = (0..scale.batch).map(|w| (w % 2) as u8).collect();
    let fingerprint = |ensemble: &mut ResNetEnsemble, losses: &[Vec<f32>]| -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for member in ensemble.members_mut() {
            member.visit_params(&mut |params, _| {
                out.extend(params.iter().map(|v| v.to_bits()));
            });
        }
        for epoch_losses in losses {
            out.extend(epoch_losses.iter().map(|v| v.to_bits()));
        }
        out
    };
    let train_new = || {
        let mut ensemble = ResNetEnsemble::untrained(&cfg);
        let reports = ensemble.train(&windows, &labels, &cfg);
        let losses: Vec<Vec<f32>> = reports.into_iter().map(|r| r.epoch_losses).collect();
        fingerprint(&mut ensemble, &losses)
    };
    let train_legacy = || {
        ds_neural::workspace::set_buffer_reuse(false);
        let mut ensemble = ResNetEnsemble::untrained(&cfg);
        let losses: Vec<Vec<f32>> = ensemble
            .members_mut()
            .iter_mut()
            .enumerate()
            .map(|(i, member)| {
                let mut tc = cfg.train.clone();
                tc.shuffle_seed = cfg.train.shuffle_seed.wrapping_add(i as u64);
                train_classifier_reference(member, &windows, &labels, &tc).epoch_losses
            })
            .collect();
        ds_neural::workspace::set_buffer_reuse(true);
        fingerprint(&mut ensemble, &losses)
    };
    let legacy = seq(train_legacy);
    let sequential = seq(train_new);
    let parallel = train_new();
    let identical = legacy == sequential && legacy == parallel;
    assert!(identical, "train epoch: training paths diverged");
    let (seq_secs, par_secs) = measure(
        scale.iters,
        || {
            train_legacy();
        },
        || {
            train_new();
        },
    );
    // Elements: samples seen per run = windows × epochs × members.
    let elements = (scale.batch * scale.window * cfg.train.epochs * cfg.kernel_sizes.len()) as u64;
    build_case(
        "train_epoch",
        elements,
        scale.iters,
        identical,
        seq_secs,
        par_secs,
    )
}

/// Run every case at `scale`; panics if any parallel path is not
/// bit-identical to its sequential twin.
pub fn run_suite(scale: PerfScale, smoke: bool) -> PerfReport {
    let _span = ds_obs::span!("bench.perf_suite");
    PerfReport {
        threads: ds_par::threads(),
        smoke,
        cases: vec![
            conv_forward_case(scale),
            ensemble_predict_case(scale),
            e2e_localize_case(scale),
            train_epoch_case(scale),
        ],
    }
}

/// Render a report as an aligned text table.
pub fn render(report: &PerfReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{}", c.elements_per_iter),
                format!("{:.3e}", c.seq_elements_per_sec),
                format!("{:.3e}", c.par_elements_per_sec),
                format!("{:.2}x", c.speedup),
                if c.bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    format!(
        "ds-par perf suite ({} worker{}, {} mode)\n{}",
        report.threads,
        if report.threads == 1 { "" } else { "s" },
        if report.smoke { "smoke" } else { "full" },
        crate::report::text_table(
            &[
                "case",
                "elems/iter",
                "seq elems/s",
                "par elems/s",
                "speedup",
                "bit-identical"
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_is_bit_identical() {
        let tiny = PerfScale {
            batch: 4,
            window: 64,
            iters: 1,
        };
        let report = run_suite(tiny, true);
        assert_eq!(report.cases.len(), 4);
        for c in &report.cases {
            assert!(c.bit_identical, "{} diverged", c.name);
            assert!(c.seq_secs > 0.0 && c.par_secs > 0.0);
            assert!(c.seq_elements_per_sec.is_finite());
        }
        let table = render(&report);
        assert!(table.contains("conv_forward"));
        assert!(table.contains("e2e_localize"));
        assert!(table.contains("train_epoch"));
    }
}
