//! Sequential-vs-parallel performance harness for the ds-par substrate.
//!
//! Each case runs the same workload twice — once pinned to one worker
//! (`ds_par::set_threads(Some(1))`) and once on the configured team — and
//! records wall time, throughput in elements/sec, and the speedup. Before
//! timing, the two paths' outputs are compared **bit for bit**: the
//! substrate's contract is that parallelism never changes numerics, and
//! this harness enforces it on every run (a report with
//! `bit_identical: false` means the contract is broken, and
//! [`run_suite`] panics rather than produce one).
//!
//! The `perf` binary renders the suite as a table and persists it to
//! `results/BENCH_perf.json`; `benches/perf.rs` wraps the same workloads
//! in Criterion for trend tracking.

use ds_camal::localizer::localize_batch;
use ds_camal::{CamalConfig, LocalizerConfig, ResNetEnsemble};
use ds_neural::conv::Conv1d;
use ds_neural::tensor::Tensor;
use serde::Serialize;
use std::time::Instant;

/// One sequential-vs-parallel measurement.
#[derive(Debug, Clone, Serialize)]
pub struct PerfCase {
    /// Workload name (`conv_forward`, `ensemble_predict`, `e2e_localize`).
    pub name: String,
    /// Elements produced per iteration (output samples of the workload).
    pub elements_per_iter: u64,
    /// Timed iterations per path.
    pub iters: u64,
    /// Sequential wall time for all iterations, seconds.
    pub seq_secs: f64,
    /// Parallel wall time for all iterations, seconds.
    pub par_secs: f64,
    /// Sequential throughput, elements per second.
    pub seq_elements_per_sec: f64,
    /// Parallel throughput, elements per second.
    pub par_elements_per_sec: f64,
    /// `seq_secs / par_secs` — > 1 means the parallel path is faster.
    pub speedup: f64,
    /// Whether the two paths produced bit-identical outputs (always true
    /// in a published report; the suite panics otherwise).
    pub bit_identical: bool,
}

/// The full suite, as persisted to `results/BENCH_perf.json`.
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// Worker-team size used for the parallel path.
    pub threads: usize,
    /// Whether this was the reduced smoke configuration (CI) or the full
    /// benchmark configuration.
    pub smoke: bool,
    /// The measurements.
    pub cases: Vec<PerfCase>,
}

/// Workload sizes, reduced under `--smoke` so CI stays fast.
#[derive(Debug, Clone, Copy)]
pub struct PerfScale {
    /// Batch rows (windows) per iteration.
    pub batch: usize,
    /// Samples per window.
    pub window: usize,
    /// Timed iterations per path.
    pub iters: usize,
}

impl PerfScale {
    /// CI-sized: a few seconds end to end.
    pub fn smoke() -> PerfScale {
        PerfScale {
            batch: 8,
            window: 180,
            iters: 2,
        }
    }

    /// Benchmark-sized: paper-scale 12 h windows.
    pub fn full() -> PerfScale {
        PerfScale {
            batch: 32,
            window: 720,
            iters: 5,
        }
    }
}

fn time_iters<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_secs_f64()
}

fn seq<R>(f: impl FnOnce() -> R) -> R {
    ds_par::set_threads(Some(1));
    let out = f();
    ds_par::set_threads(None);
    out
}

fn case(
    name: &str,
    elements_per_iter: u64,
    iters: usize,
    bit_identical: bool,
    mut work: impl FnMut(),
) -> PerfCase {
    let seq_secs = seq(|| time_iters(iters, &mut work)).max(f64::MIN_POSITIVE);
    let par_secs = time_iters(iters, &mut work).max(f64::MIN_POSITIVE);
    let total = (elements_per_iter * iters as u64) as f64;
    PerfCase {
        name: name.to_string(),
        elements_per_iter,
        iters: iters as u64,
        seq_secs,
        par_secs,
        seq_elements_per_sec: total / seq_secs,
        par_elements_per_sec: total / par_secs,
        speedup: seq_secs / par_secs,
        bit_identical,
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Conv1d forward over a paper-scale layer (8→16 channels, k = 9).
fn conv_forward_case(scale: PerfScale) -> PerfCase {
    let conv = Conv1d::new(8, 16, 9, 1);
    let x = Tensor::from_data(
        scale.batch,
        8,
        scale.window,
        (0..scale.batch * 8 * scale.window)
            .map(|i| ((i % 97) as f32 - 48.0) * 0.021)
            .collect(),
    );
    let reference = seq(|| conv.infer(&x));
    let parallel = conv.infer(&x);
    let identical = bits(&reference.data) == bits(&parallel.data);
    assert!(identical, "conv forward: parallel output diverged");
    let elements = (scale.batch * 16 * scale.window) as u64;
    case("conv_forward", elements, scale.iters, identical, || {
        conv.infer(&x);
    })
}

/// Full-ensemble prediction (probabilities + CAMs, 4 members).
fn ensemble_predict_case(scale: PerfScale) -> PerfCase {
    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let x = Tensor::from_data(
        scale.batch,
        1,
        scale.window,
        (0..scale.batch * scale.window)
            .map(|i| ((i % 131) as f32) * 13.7)
            .collect(),
    );
    let reference = seq(|| ensemble.predict(&x));
    let parallel = ensemble.predict(&x);
    let identical = reference.len() == parallel.len()
        && reference.iter().zip(&parallel).all(|(a, b)| {
            bits(&a.probs) == bits(&b.probs)
                && a.cams.len() == b.cams.len()
                && a.cams
                    .iter()
                    .zip(&b.cams)
                    .all(|(ca, cb)| bits(ca) == bits(cb))
        });
    assert!(identical, "ensemble predict: parallel output diverged");
    let elements = (scale.batch * scale.window * ensemble.len()) as u64;
    case("ensemble_predict", elements, scale.iters, identical, || {
        ensemble.predict(&x);
    })
}

/// The end-to-end CamAL pipeline (steps 1–6) over a batch of windows.
fn e2e_localize_case(scale: PerfScale) -> PerfCase {
    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let loc_cfg = LocalizerConfig {
        gate_on_detection: false,
        ..LocalizerConfig::default()
    };
    let windows: Vec<Vec<f32>> = (0..scale.batch)
        .map(|w| {
            (0..scale.window)
                .map(|i| ((w * 13 + i) % 29) as f32 * 55.0 + (i as f32 * 0.11).sin() * 20.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = windows.iter().map(|w| w.as_slice()).collect();
    let reference = seq(|| localize_batch(&ensemble, &refs, &loc_cfg));
    let parallel = localize_batch(&ensemble, &refs, &loc_cfg);
    let identical = reference.len() == parallel.len()
        && reference.iter().zip(&parallel).all(|(a, b)| {
            bits(&a.cam) == bits(&b.cam)
                && a.status == b.status
                && a.detection.probability.to_bits() == b.detection.probability.to_bits()
        });
    assert!(identical, "e2e localize: parallel output diverged");
    let elements = (scale.batch * scale.window) as u64;
    case("e2e_localize", elements, scale.iters, identical, || {
        localize_batch(&ensemble, &refs, &loc_cfg);
    })
}

/// Run every case at `scale`; panics if any parallel path is not
/// bit-identical to its sequential twin.
pub fn run_suite(scale: PerfScale, smoke: bool) -> PerfReport {
    let _span = ds_obs::span!("bench.perf_suite");
    PerfReport {
        threads: ds_par::threads(),
        smoke,
        cases: vec![
            conv_forward_case(scale),
            ensemble_predict_case(scale),
            e2e_localize_case(scale),
        ],
    }
}

/// Render a report as an aligned text table.
pub fn render(report: &PerfReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{}", c.elements_per_iter),
                format!("{:.3e}", c.seq_elements_per_sec),
                format!("{:.3e}", c.par_elements_per_sec),
                format!("{:.2}x", c.speedup),
                if c.bit_identical { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    format!(
        "ds-par perf suite ({} worker{}, {} mode)\n{}",
        report.threads,
        if report.threads == 1 { "" } else { "s" },
        if report.smoke { "smoke" } else { "full" },
        crate::report::text_table(
            &[
                "case",
                "elems/iter",
                "seq elems/s",
                "par elems/s",
                "speedup",
                "bit-identical"
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_is_bit_identical() {
        let tiny = PerfScale {
            batch: 4,
            window: 64,
            iters: 1,
        };
        let report = run_suite(tiny, true);
        assert_eq!(report.cases.len(), 3);
        for c in &report.cases {
            assert!(c.bit_identical, "{} diverged", c.name);
            assert!(c.seq_secs > 0.0 && c.par_secs > 0.0);
            assert!(c.seq_elements_per_sec.is_finite());
        }
        let table = render(&report);
        assert!(table.contains("conv_forward"));
        assert!(table.contains("e2e_localize"));
    }
}
