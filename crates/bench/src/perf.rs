//! Performance harness for the serving substrate: sequential-vs-parallel
//! baselines for ds-par, and frozen-vs-mutable baselines for the BN-folded
//! inference plan.
//!
//! Each ds-par case runs the same workload twice — once pinned to one
//! worker (`ds_par::set_threads(Some(1))`) and once on the configured
//! team. Each frozen case runs the mutable reference path (the trainable
//! ensemble, at the ambient team size) against the frozen plan
//! ([`ds_camal::FrozenCamal`] / [`ds_camal::FrozenEnsemble`]). All paths
//! are timed with interleaved best-of-k sampling after one untimed
//! warmup iteration per path: iterations alternate so host-load drift
//! hits both equally, each path is scored by its fastest observed
//! iteration (external noise only ever adds time, so the minimum is the
//! estimator closest to intrinsic cost), and every throughput number
//! counts post-warmup iterations only (the warmup also sizes the frozen
//! arenas, so the timed region is the steady state).
//!
//! Contracts enforced on every run:
//! - ds-par cases compare outputs **bit for bit** — parallelism never
//!   changes numerics ([`run_sweep`] panics otherwise).
//! - frozen cases compare ensemble probabilities within `1e-4` max-abs
//!   (BN folding reassociates float products) and report
//!   `decision_flips` — windows whose thresholded detection or status
//!   mask changed. A published report must show zero flips.
//! - frozen cases assert **zero heap allocations** per steady-state
//!   iteration (via the ds-obs per-thread allocation counter) whenever
//!   observability is off, and publish `allocs_per_window` either way.
//!
//! The `perf` binary renders the suite as a table and persists it to
//! `results/BENCH_perf.json` — one sweep entry per `--threads` value;
//! `benches/perf.rs` wraps the same workloads in Criterion for trend
//! tracking.

use ds_camal::localizer::localize_batch;
use ds_camal::{Backbone, Camal, CamalConfig, LocalizerConfig, ResNetEnsemble, StreamingCamal};
use ds_neural::batchnorm::BatchNorm1d;
use ds_neural::conv::Conv1d;
use ds_neural::frozen::FrozenConv;
use ds_neural::simd::{self, SimdMode};
use ds_neural::tensor::Tensor;
use ds_neural::train::train_classifier_reference;
use ds_neural::VisitParams;
use ds_timeseries::faults::FaultPlan;
use ds_timeseries::{Status, TimeSeries};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One baseline-vs-optimized measurement. For ds-par cases the baseline
/// (`seq_*`) is the workload pinned to one worker and the optimized
/// (`par_*`) is the configured team; for `frozen_*` cases the baseline is
/// the mutable reference path at the ambient team size and the optimized
/// is the frozen plan (sequential by design — its dispatch-free inner
/// loop is where the speedup lives).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfCase {
    /// Workload name (`conv_forward`, `frozen_conv`, `ensemble_predict`,
    /// `e2e_localize`, `train_epoch`, `frozen_predict`,
    /// `quantized_predict`, `frozen_localize`, `backbone_inception`,
    /// `backbone_transapp`, `streaming_predict`).
    pub name: String,
    /// Elements produced per iteration (output samples of the workload).
    pub elements_per_iter: u64,
    /// Timed iterations per path (warmup excluded).
    pub iters: u64,
    /// Baseline wall time for all timed iterations, seconds, projected
    /// from the fastest observed iteration (see the module docs).
    pub seq_secs: f64,
    /// Optimized wall time for all timed iterations, seconds, projected
    /// from the fastest observed iteration (see the module docs).
    pub par_secs: f64,
    /// Baseline throughput over post-warmup iterations, elements/second.
    pub seq_elements_per_sec: f64,
    /// Optimized throughput over post-warmup iterations, elements/second.
    pub par_elements_per_sec: f64,
    /// `seq_secs / par_secs` — > 1 means the optimized path is faster.
    pub speedup: f64,
    /// ds-par cases: whether the two paths produced bit-identical
    /// outputs. Frozen cases: whether every thresholded decision matched
    /// (`decision_flips == 0`). Always true in a published report.
    pub bit_identical: bool,
    /// Frozen cases: windows whose detection flag or status mask differed
    /// from the reference path. Zero for ds-par cases by construction.
    pub decision_flips: u64,
    /// Heap-allocation events per window on the optimized path's calling
    /// thread, averaged over the timed iterations. Zero for the frozen
    /// cases in steady state (asserted when observability is off).
    pub allocs_per_window: f64,
    /// Serving-specific measurements, present only on the
    /// `serve_throughput` case (absent in reports written before it
    /// existed).
    #[serde(default)]
    pub serve: Option<ServeStats>,
}

/// HTTP-serving measurements attached to the `serve_throughput` case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeStats {
    /// Served requests per second over the timed closed-loop phase.
    pub req_per_sec: f64,
    /// Median per-request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-request latency, milliseconds. The published
    /// SLO is 50 ms; the regression sentinel enforces it.
    pub p99_ms: f64,
    /// Mean micro-batch fill ratio in `[0, 1]`.
    pub mean_batch_fill: f64,
    /// Non-200 responses during the timed phase (zero in a published
    /// report: the main server is provisioned for the schedule).
    pub errors: u64,
}

/// The cases measured at one worker-team size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfSweep {
    /// Worker-team size the sweep ran with.
    pub threads: usize,
    /// The measurements.
    pub cases: Vec<PerfCase>,
}

/// The full suite, as persisted to `results/BENCH_perf.json`: one sweep
/// per requested thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Whether this was the reduced smoke configuration (CI) or the full
    /// benchmark configuration.
    pub smoke: bool,
    /// SIMD dispatch decision the run was measured under
    /// ([`simd::label`]): `"avx2"` on vectorized hosts, `"scalar"`
    /// otherwise. The regression sentinel keys its absolute frozen and
    /// quantized speedup floors on this, so a scalar host (or a
    /// `DS_SIMD=off` twin run) is judged against the scalar contract
    /// instead of the vectorized one. Reports written before the field
    /// existed deserialize as the empty string, which the sentinel
    /// treats like any non-"avx2" label: scalar floors.
    #[serde(default)]
    pub simd: String,
    /// Logical cores of the measuring host
    /// (`std::thread::available_parallelism`), recorded once so a
    /// report's numbers can be read against the hardware that produced
    /// them. Zero in reports written before the field existed.
    #[serde(default)]
    pub host_cores: usize,
    /// Ambient ds-par worker-team size the run started under (the
    /// `DS_PAR_THREADS` resolution) before any `--threads` override.
    /// Zero in reports written before the field existed.
    #[serde(default)]
    pub par_threads: usize,
    /// One entry per `--threads` value, in request order.
    pub sweeps: Vec<PerfSweep>,
}

/// Workload sizes, reduced under `--smoke` so CI stays fast.
#[derive(Debug, Clone, Copy)]
pub struct PerfScale {
    /// Batch rows (windows) per iteration.
    pub batch: usize,
    /// Samples per window.
    pub window: usize,
    /// Timed iterations per path.
    pub iters: usize,
}

impl PerfScale {
    /// CI-sized — currently the same shape as [`PerfScale::full`]
    /// (~20 s end to end on two workers). Anything thinner makes the CI
    /// frozen-speedup gate flaky: the frozen plan's advantage lives in
    /// the interior conv loops and in reusing warm arena pages, so short
    /// windows (mostly padded edges and per-call overhead) and small
    /// batches (the mutable path's fresh allocations stay cheap) both
    /// thin the margin below the measurement noise on a shared host.
    pub fn smoke() -> PerfScale {
        PerfScale::full()
    }

    /// Benchmark-sized: paper-scale 12 h windows.
    pub fn full() -> PerfScale {
        PerfScale {
            batch: 32,
            window: 720,
            iters: 5,
        }
    }
}

fn time_once<R>(mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

/// Run `f` pinned to one worker, restoring the *current* team size after
/// — not the environment default, so `--threads` sweep overrides survive.
fn seq<R>(f: impl FnOnce() -> R) -> R {
    let prev = ds_par::threads();
    ds_par::set_threads(Some(1));
    let out = f();
    ds_par::set_threads(Some(prev));
    out
}

/// The fastest observed sample. On a shared host every slowdown source
/// (scheduler preemption, frequency drift, cache pollution from
/// neighbours) only *adds* time, so the minimum is the estimator closest
/// to the workload's intrinsic cost — medians still carry whatever noise
/// hit the middle sample, which made the CI speedup gate flaky.
fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Time a baseline and an optimized path with interleaved best-of-k
/// sampling after one untimed warmup pass per path. Returns projected
/// totals `(best_baseline × iters, best_optimized × iters)` plus the
/// optimized path's heap-allocation events per window (calling thread,
/// timed iterations only). `pin_baseline` runs the baseline under
/// [`seq`]; the optimized path always runs at the ambient team size.
fn sample_paths(
    iters: usize,
    windows_per_iter: u64,
    pin_baseline: bool,
    mut baseline: impl FnMut(),
    mut optimized: impl FnMut(),
) -> (f64, f64, f64) {
    if pin_baseline {
        seq(&mut baseline);
    } else {
        baseline();
    }
    optimized();
    let mut base_samples = Vec::with_capacity(iters);
    let mut opt_samples = Vec::with_capacity(iters);
    let mut allocs = 0u64;
    for _ in 0..iters {
        base_samples.push(if pin_baseline {
            seq(|| time_once(&mut baseline))
        } else {
            time_once(&mut baseline)
        });
        let before = ds_obs::alloc_count();
        opt_samples.push(time_once(&mut optimized));
        allocs += ds_obs::alloc_count() - before;
    }
    (
        (best(&base_samples) * iters as f64).max(f64::MIN_POSITIVE),
        (best(&opt_samples) * iters as f64).max(f64::MIN_POSITIVE),
        allocs as f64 / (iters as u64 * windows_per_iter) as f64,
    )
}

/// [`sample_paths`] for ds-par cases, where baseline and optimized run
/// the *same* closure (pinned vs ambient team).
fn sample_same_path(iters: usize, windows_per_iter: u64, work: impl FnMut()) -> (f64, f64, f64) {
    let work = std::cell::RefCell::new(work);
    sample_paths(
        iters,
        windows_per_iter,
        true,
        || work.borrow_mut()(),
        || work.borrow_mut()(),
    )
}

#[allow(clippy::too_many_arguments)]
fn build_case(
    name: &str,
    elements_per_iter: u64,
    iters: usize,
    bit_identical: bool,
    decision_flips: u64,
    seq_secs: f64,
    par_secs: f64,
    allocs_per_window: f64,
) -> PerfCase {
    let total = (elements_per_iter * iters as u64) as f64;
    PerfCase {
        name: name.to_string(),
        elements_per_iter,
        iters: iters as u64,
        seq_secs,
        par_secs,
        seq_elements_per_sec: total / seq_secs,
        par_elements_per_sec: total / par_secs,
        speedup: seq_secs / par_secs,
        bit_identical,
        decision_flips,
        allocs_per_window,
        serve: None,
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Conv1d forward over a paper-scale layer (8→16 channels, k = 9).
fn conv_forward_case(scale: PerfScale) -> PerfCase {
    let conv = Conv1d::new(8, 16, 9, 1);
    let x = Tensor::from_data(
        scale.batch,
        8,
        scale.window,
        (0..scale.batch * 8 * scale.window)
            .map(|i| ((i % 97) as f32 - 48.0) * 0.021)
            .collect(),
    );
    let reference = seq(|| conv.infer(&x));
    let parallel = conv.infer(&x);
    let identical = bits(&reference.data) == bits(&parallel.data);
    assert!(identical, "conv forward: parallel output diverged");
    let elements = (scale.batch * 16 * scale.window) as u64;
    // The timed loop reuses one output tensor via `infer_into` — the hot
    // serving paths never allocate per pass, so the measured loop must
    // not either (`allocs_per_window` regressed to 0.0625 when this loop
    // went through the allocating `infer`).
    let mut y = Tensor::zeros(scale.batch, 16, scale.window);
    assert_zero_alloc(|| conv.infer_into(&x, &mut y), "conv forward");
    let (seq_secs, par_secs, allocs) = sample_same_path(scale.iters, scale.batch as u64, || {
        conv.infer_into(&x, &mut y);
    });
    build_case(
        "conv_forward",
        elements,
        scale.iters,
        identical,
        0,
        seq_secs,
        par_secs,
        allocs,
    )
}

/// The frozen conv kernel in isolation (same 8→16 / k = 9 layer as
/// [`conv_forward_case`], BN folded, ReLU fused): scalar determinism twin
/// vs the AVX2/FMA SIMD path. On hosts without AVX2 (or with
/// `DS_SIMD=off`) both paths run the scalar twin and the speedup reads
/// 1.0×. `bit_identical` here means "within the `1e-6`-relative SIMD
/// parity tolerance" — FMA contracts mul+add, so exact bit equality is
/// not the contract.
fn frozen_conv_case(scale: PerfScale) -> PerfCase {
    let conv = Conv1d::new(8, 16, 9, 1);
    let bn = BatchNorm1d::new(16);
    let frozen = FrozenConv::fold(&conv, &bn);
    let x: Vec<f32> = (0..scale.batch * 8 * scale.window)
        .map(|i| ((i % 97) as f32 - 48.0) * 0.021)
        .collect();
    let n_out = scale.batch * 16 * scale.window;
    let mut y_scalar = vec![0.0f32; n_out];
    let mut y_simd = vec![0.0f32; n_out];
    simd::set_mode(Some(SimdMode::Scalar));
    frozen.infer_into(&x, scale.batch, scale.window, &mut y_scalar, true);
    simd::set_mode(None);
    frozen.infer_into(&x, scale.batch, scale.window, &mut y_simd, true);
    let within_tolerance = y_scalar
        .iter()
        .zip(&y_simd)
        .all(|(a, b)| (a - b).abs() <= 1e-6 * a.abs().max(1.0));
    assert!(within_tolerance, "frozen conv: SIMD diverged from scalar");
    let elements = n_out as u64;
    let (seq_secs, par_secs, allocs) = sample_paths(
        scale.iters,
        scale.batch as u64,
        false,
        || {
            simd::set_mode(Some(SimdMode::Scalar));
            frozen.infer_into(&x, scale.batch, scale.window, &mut y_scalar, true);
            simd::set_mode(None);
        },
        || {
            frozen.infer_into(&x, scale.batch, scale.window, &mut y_simd, true);
        },
    );
    build_case(
        "frozen_conv",
        elements,
        scale.iters,
        within_tolerance,
        0,
        seq_secs,
        par_secs,
        allocs,
    )
}

/// Full-ensemble prediction (probabilities + CAMs, 4 members).
fn ensemble_predict_case(scale: PerfScale) -> PerfCase {
    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let x = Tensor::from_data(
        scale.batch,
        1,
        scale.window,
        (0..scale.batch * scale.window)
            .map(|i| ((i % 131) as f32) * 13.7)
            .collect(),
    );
    let reference = seq(|| ensemble.predict(&x));
    let parallel = ensemble.predict(&x);
    let identical = reference.len() == parallel.len()
        && reference.iter().zip(&parallel).all(|(a, b)| {
            bits(&a.probs) == bits(&b.probs)
                && a.cams.len() == b.cams.len()
                && a.cams
                    .iter()
                    .zip(&b.cams)
                    .all(|(ca, cb)| bits(ca) == bits(cb))
        });
    assert!(identical, "ensemble predict: parallel output diverged");
    let elements = (scale.batch * scale.window * ensemble.len()) as u64;
    let (seq_secs, par_secs, allocs) = sample_same_path(scale.iters, scale.batch as u64, || {
        ensemble.predict(&x);
    });
    build_case(
        "ensemble_predict",
        elements,
        scale.iters,
        identical,
        0,
        seq_secs,
        par_secs,
        allocs,
    )
}

/// The end-to-end CamAL pipeline (steps 1–6) over a batch of windows.
fn e2e_localize_case(scale: PerfScale) -> PerfCase {
    let cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    let ensemble = ResNetEnsemble::untrained(&cfg);
    let loc_cfg = LocalizerConfig {
        gate_on_detection: false,
        ..LocalizerConfig::default()
    };
    let windows: Vec<Vec<f32>> = (0..scale.batch)
        .map(|w| {
            (0..scale.window)
                .map(|i| ((w * 13 + i) % 29) as f32 * 55.0 + (i as f32 * 0.11).sin() * 20.0)
                .collect()
        })
        .collect();
    let refs: Vec<&[f32]> = windows.iter().map(|w| w.as_slice()).collect();
    let reference = seq(|| localize_batch(&ensemble, &refs, &loc_cfg));
    let parallel = localize_batch(&ensemble, &refs, &loc_cfg);
    let identical = reference.len() == parallel.len()
        && reference.iter().zip(&parallel).all(|(a, b)| {
            bits(&a.cam) == bits(&b.cam)
                && a.status == b.status
                && a.detection.probability.to_bits() == b.detection.probability.to_bits()
        });
    assert!(identical, "e2e localize: parallel output diverged");
    let elements = (scale.batch * scale.window) as u64;
    let (seq_secs, par_secs, allocs) = sample_same_path(scale.iters, scale.batch as u64, || {
        localize_batch(&ensemble, &refs, &loc_cfg);
    });
    build_case(
        "e2e_localize",
        elements,
        scale.iters,
        identical,
        0,
        seq_secs,
        par_secs,
        allocs,
    )
}

/// The synthetic, linearly separable corpus shared by the training case
/// and the frozen serving model: odd windows carry a periodic burst.
fn separable_corpus(scale: PerfScale) -> (Vec<Vec<f32>>, Vec<u8>) {
    let windows: Vec<Vec<f32>> = (0..scale.batch)
        .map(|w| {
            (0..scale.window)
                .map(|i| {
                    let base = ((w * 17 + i) % 23) as f32 * 0.04;
                    let burst = if w % 2 == 1 && i % 50 < 20 { 1.0 } else { 0.0 };
                    base + burst
                })
                .collect()
        })
        .collect();
    let labels: Vec<u8> = (0..scale.batch).map(|w| (w % 2) as u8).collect();
    (windows, labels)
}

/// Deterministic parallel training of the paper's 4-member ensemble
/// (k ∈ {5, 7, 9, 15}) for two epochs: members fan out across the worker
/// team, layers split batches into fixed micro-batches, and gradients
/// tree-reduce in slot order.
///
/// Unlike the inference cases, the sequential twin here is the preserved
/// pre-workspace trainer: the legacy batching loop
/// ([`train_classifier_reference`]: per-batch window clones and input
/// re-allocation) with layer buffer reuse disabled
/// (`workspace::set_buffer_reuse(false)`), reproducing the historical
/// per-call allocation profile, pinned to one worker — i.e. the speedup
/// reads as "what replacing the legacy sequential trainer with the
/// zero-alloc data-parallel trainer buys". Bit-identity is checked three
/// ways — legacy sequential, new sequential, new parallel — over every
/// trained weight of every member plus the per-epoch losses, so the
/// number also certifies that the allocation-free rewrite reproduces the
/// legacy trainer exactly. (The corpus size is a multiple of the batch
/// size so the legacy loop's dropped-singleton bug is not in play.)
fn train_epoch_case(scale: PerfScale) -> PerfCase {
    let mut cfg = CamalConfig {
        channels: vec![4, 8],
        ..CamalConfig::default()
    };
    cfg.train.epochs = 2;
    cfg.train.batch_size = 4;
    cfg.train.patience = None;
    assert_eq!(
        scale.batch % cfg.train.batch_size,
        0,
        "corpus must split evenly so legacy and fixed batching agree"
    );
    let (windows, labels) = separable_corpus(scale);
    let fingerprint = |ensemble: &mut ResNetEnsemble, losses: &[Vec<f32>]| -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for member in ensemble.members_mut() {
            member.visit_params(&mut |params, _| {
                out.extend(params.iter().map(|v| v.to_bits()));
            });
        }
        for epoch_losses in losses {
            out.extend(epoch_losses.iter().map(|v| v.to_bits()));
        }
        out
    };
    let train_new = || {
        let mut ensemble = ResNetEnsemble::untrained(&cfg);
        let reports = ensemble.train(&windows, &labels, &cfg);
        let losses: Vec<Vec<f32>> = reports.into_iter().map(|r| r.epoch_losses).collect();
        fingerprint(&mut ensemble, &losses)
    };
    let train_legacy = || {
        ds_neural::workspace::set_buffer_reuse(false);
        let mut ensemble = ResNetEnsemble::untrained(&cfg);
        let losses: Vec<Vec<f32>> = ensemble
            .members_mut()
            .iter_mut()
            .enumerate()
            .map(|(i, member)| {
                let mut tc = cfg.train.clone();
                tc.shuffle_seed = cfg.train.shuffle_seed.wrapping_add(i as u64);
                let resnet = member
                    .as_resnet_mut()
                    .expect("reference trainer oracle is ResNet-only");
                train_classifier_reference(resnet, &windows, &labels, &tc).epoch_losses
            })
            .collect();
        ds_neural::workspace::set_buffer_reuse(true);
        fingerprint(&mut ensemble, &losses)
    };
    let legacy = seq(train_legacy);
    let sequential = seq(train_new);
    let parallel = train_new();
    let identical = legacy == sequential && legacy == parallel;
    assert!(identical, "train epoch: training paths diverged");
    let (seq_secs, par_secs, allocs) = sample_paths(
        scale.iters,
        scale.batch as u64,
        true,
        || {
            train_legacy();
        },
        || {
            train_new();
        },
    );
    // Elements: samples seen per run = windows × epochs × members.
    let elements = (scale.batch * scale.window * cfg.train.epochs * cfg.kernel_sizes.len()) as u64;
    build_case(
        "train_epoch",
        elements,
        scale.iters,
        identical,
        0,
        seq_secs,
        par_secs,
        allocs,
    )
}

/// A briefly trained paper-shape model (4 members, 8→16 channels) for the
/// frozen serving cases (public: the `loadtest` binary reuses it).
/// Training moves the BatchNorm running statistics off their
/// initialization and pushes probabilities away from the 0.5 threshold,
/// so decision-identity is measured where it is meaningful — an untrained
/// ensemble sits exactly on the decision boundary.
pub fn trained_serving_model(scale: PerfScale) -> Camal {
    let mut cfg = CamalConfig {
        channels: vec![8, 16],
        ..CamalConfig::default()
    };
    cfg.train.epochs = 2;
    cfg.train.batch_size = 4;
    cfg.train.patience = None;
    let (windows, labels) = separable_corpus(scale);
    let mut ensemble = ResNetEnsemble::untrained(&cfg);
    ensemble.train(&windows, &labels, &cfg);
    Camal::from_parts(ensemble, cfg)
}

/// The windows the frozen cases predict on: varied, non-degenerate, and
/// disjoint from the training corpus pattern.
fn serving_windows(scale: PerfScale) -> Vec<Vec<f32>> {
    (0..scale.batch)
        .map(|w| {
            (0..scale.window)
                .map(|i| ((w * 13 + i) % 29) as f32 * 55.0 + (i as f32 * 0.11).sin() * 20.0)
                .collect()
        })
        .collect()
}

/// Assert the frozen path's steady state allocates nothing on this
/// thread. Only meaningful with observability off — the metric recording
/// itself allocates when enabled.
fn assert_zero_alloc(mut pass: impl FnMut(), what: &str) {
    if ds_obs::enabled() {
        return;
    }
    pass(); // warm: sizes every arena for this shape
    let before = ds_obs::alloc_count();
    pass();
    assert_eq!(
        ds_obs::alloc_count() - before,
        0,
        "{what}: steady-state pass allocated"
    );
}

/// Frozen ensemble prediction (probabilities + CAMs) against the mutable
/// reference path at the ambient team size.
fn frozen_predict_case(scale: PerfScale, model: &Camal) -> PerfCase {
    let ensemble = model.ensemble();
    let windows = serving_windows(scale);
    let x = Tensor::from_windows(&windows);
    let mut frozen = ensemble.freeze();
    // Contract: probabilities within tolerance, decisions identical.
    let reference = ensemble.predict(&x);
    let ref_probs = ResNetEnsemble::ensemble_probability(&reference);
    frozen.predict_into(&x);
    let mut flips = 0u64;
    let mut max_abs = 0.0f32;
    for (r, f) in ref_probs.iter().zip(frozen.ensemble_probs()) {
        max_abs = max_abs.max((r - f).abs());
        if (*r > 0.5) != (*f > 0.5) {
            flips += 1;
        }
    }
    assert!(
        max_abs <= 1e-4,
        "frozen predict: probabilities drifted by {max_abs}"
    );
    assert_zero_alloc(|| frozen.predict_into(&x), "frozen predict");
    let (seq_secs, par_secs, allocs) = sample_paths(
        scale.iters,
        scale.batch as u64,
        false,
        || {
            ensemble.predict(&x);
        },
        || {
            frozen.predict_into(&x);
        },
    );
    let elements = (scale.batch * scale.window * ensemble.len()) as u64;
    build_case(
        "frozen_predict",
        elements,
        scale.iters,
        flips == 0,
        flips,
        seq_secs,
        par_secs,
        allocs,
    )
}

/// Held-out calibration windows for the quantized plan: same generator
/// family (and therefore the same value range) as [`serving_windows`],
/// phase-shifted so no calibration window equals a serving window.
fn calibration_windows(scale: PerfScale) -> Vec<Vec<f32>> {
    (0..scale.batch)
        .map(|w| {
            (0..scale.window)
                .map(|i| {
                    ((w * 13 + 7 * 13 + i) % 29) as f32 * 55.0
                        + (i as f32 * 0.11 + 1.0).sin() * 20.0
                })
                .collect()
        })
        .collect()
}

/// Int8-quantized frozen ensemble prediction against the mutable
/// reference path. Calibrated on a held-out window set
/// ([`calibration_windows`]); the contract is weaker on probabilities
/// (int8 carries real quantization noise) but just as strict on
/// decisions: zero flips in a published report.
fn quantized_predict_case(scale: PerfScale, model: &Camal) -> PerfCase {
    let ensemble = model.ensemble();
    let windows = serving_windows(scale);
    let x = Tensor::from_windows(&windows);
    let calib = Tensor::from_windows(&calibration_windows(scale));
    let mut quant = ensemble.freeze_quantized(&calib);
    let reference = ensemble.predict(&x);
    let ref_probs = ResNetEnsemble::ensemble_probability(&reference);
    quant.predict_into(&x);
    let mut flips = 0u64;
    let mut max_abs = 0.0f32;
    for (r, f) in ref_probs.iter().zip(quant.ensemble_probs()) {
        max_abs = max_abs.max((r - f).abs());
        if (*r > 0.5) != (*f > 0.5) {
            flips += 1;
        }
    }
    assert!(
        max_abs <= 0.05,
        "quantized predict: probabilities drifted by {max_abs}"
    );
    assert_zero_alloc(|| quant.predict_into(&x), "quantized predict");
    let (seq_secs, par_secs, allocs) = sample_paths(
        scale.iters,
        scale.batch as u64,
        false,
        || {
            ensemble.predict(&x);
        },
        || {
            quant.predict_into(&x);
        },
    );
    let elements = (scale.batch * scale.window * ensemble.len()) as u64;
    build_case(
        "quantized_predict",
        elements,
        scale.iters,
        flips == 0,
        flips,
        seq_secs,
        par_secs,
        allocs,
    )
}

/// Frozen end-to-end localization (steps 1–6 through the reused
/// [`ds_camal::LocalizationBatch`] slabs) against the mutable batched
/// reference path at the ambient team size.
fn frozen_localize_case(scale: PerfScale, model: &Camal) -> PerfCase {
    localize_parity_case("frozen_localize", scale, model)
}

/// Shared body of [`frozen_localize_case`] and the per-backbone zoo
/// cases: end-to-end frozen localization of `model` against its mutable
/// path, holding the standard contracts (probabilities within `1e-4`,
/// zero decision flips, zero steady-state allocations).
fn localize_parity_case(name: &str, scale: PerfScale, model: &Camal) -> PerfCase {
    let windows = serving_windows(scale);
    let refs: Vec<&[f32]> = windows.iter().map(|w| w.as_slice()).collect();
    let mut frozen = model.freeze();
    let reference = model.localize_batch(&refs);
    let batch = frozen.localize_batch_into(&refs);
    let mut flips = 0u64;
    let mut max_abs = 0.0f32;
    for (w, loc) in reference.iter().enumerate() {
        max_abs = max_abs.max((batch.probability(w) - loc.detection.probability).abs());
        if batch.detected(w) != loc.detection.detected || batch.status(w) != loc.status.as_slice() {
            flips += 1;
        }
    }
    assert!(
        max_abs <= 1e-4,
        "{name}: probabilities drifted by {max_abs}"
    );
    assert_zero_alloc(
        || {
            frozen.localize_batch_into(&refs);
        },
        name,
    );
    let (seq_secs, par_secs, allocs) = sample_paths(
        scale.iters,
        scale.batch as u64,
        false,
        || {
            model.localize_batch(&refs);
        },
        || {
            frozen.localize_batch_into(&refs);
        },
    );
    let elements = (scale.batch * scale.window) as u64;
    build_case(
        name,
        elements,
        scale.iters,
        flips == 0,
        flips,
        seq_secs,
        par_secs,
        allocs,
    )
}

/// A briefly trained single-backbone model for the backbone zoo cases —
/// the same corpus and recipe as [`trained_serving_model`] with every
/// ensemble member on `backbone`, so the case measures that backbone's
/// frozen kernels end to end.
fn trained_backbone_model(scale: PerfScale, backbone: Backbone) -> Camal {
    let mut cfg = CamalConfig {
        channels: vec![8, 16],
        backbones: vec![backbone],
        ..CamalConfig::default()
    };
    cfg.train.epochs = 2;
    cfg.train.batch_size = 4;
    cfg.train.patience = None;
    let (windows, labels) = separable_corpus(scale);
    let mut ensemble = ResNetEnsemble::untrained(&cfg);
    ensemble.train(&windows, &labels, &cfg);
    Camal::from_parts(ensemble, cfg)
}

/// Streaming incremental series prediction against the cost an
/// interactive consumer would otherwise pay: a full
/// [`ds_camal::FrozenCamal::predict_status_into`] recompute of the
/// accumulated prefix on every arriving delta. The stream absorbs
/// stride-sized pushes (stride = window / 4, i.e. consecutive emitted
/// prefixes overlap by ≥ 75 %) and re-emits the whole status series
/// after each one; absorbed windows replay from its slabs so only the
/// end-aligned tail window runs the model per emit.
///
/// Contracts checked before timing: the streamed status equals the
/// batch prediction on the same prefix at **every** push (bitwise, the
/// tri-state merge included), every completed clean window's
/// probability / CAM / status slab equals the batch plan's output
/// bitwise, and a warm reset-and-replay cycle allocates nothing.
/// `allocs_per_window` reads as allocations per *push* here. When CI's
/// `DS_FAULT` smoke is active the same fault plan degrades this feed,
/// so the gap/Unknown invalidation protocol is measured, not just the
/// clean path.
fn streaming_predict_case(scale: PerfScale, model: &Camal) -> PerfCase {
    let w = (scale.window / 3).max(8);
    let n_windows = 16usize;
    let stride = (w / 4).max(1);
    let built = n_windows * w;
    let mut series = TimeSeries::from_values(
        0,
        60,
        (0..built)
            .map(|i| ((i * 13) % 29) as f32 * 55.0 + (i as f32 * 0.11).sin() * 20.0)
            .collect(),
    );
    if let Some(plan) = FaultPlan::from_env().expect("DS_FAULT spec must parse") {
        series = plan.apply(&series).series;
    }
    let len = series.len();
    let values = series.values().to_vec();
    let mut batch_plan = model.freeze();
    let mut stream = StreamingCamal::new(model.freeze(), w, len.div_ceil(w).max(1));
    let bounds: Vec<(usize, usize)> = (0..len)
        .step_by(stride)
        .map(|lo| (lo, (lo + stride).min(len)))
        .collect();
    let pushes = bounds.len();

    let mut stream_states: Vec<Status> = Vec::new();
    let mut batch_states: Vec<Status> = Vec::new();
    let mut flips = 0u64;
    for &(lo, hi) in &bounds {
        stream
            .push_values(&values[lo..hi])
            .expect("stream sized for the full series");
        stream.status_into(&mut stream_states);
        let prefix = series.slice(0, hi).expect("prefix in range");
        batch_plan.predict_status_into(&prefix, w, &mut batch_states);
        flips += u64::from(stream_states != batch_states);
    }
    for i in 0..stream.windows_completed() {
        if !stream.window_clean(i) {
            continue;
        }
        let batch = batch_plan.localize_batch_into(&[&values[i * w..(i + 1) * w]]);
        let same = stream.window_probability(i).to_bits() == batch.probability(0).to_bits()
            && stream.window_detected(i) == batch.detected(0)
            && bits(stream.window_cam(i)) == bits(batch.cam(0))
            && stream.window_status(i) == batch.status(0);
        flips += u64::from(!same);
    }
    let identical = flips == 0;
    assert!(identical, "streaming predict: diverged from the batch path");

    assert_zero_alloc(
        || {
            stream.reset();
            for &(lo, hi) in &bounds {
                stream.push_values(&values[lo..hi]).unwrap();
                stream.status_into(&mut stream_states);
            }
        },
        "streaming predict",
    );

    // The baseline replays a quadratic amount of window work, so cap the
    // timed iterations — best-of-k converges quickly on a loop this long.
    let iters = scale.iters.min(2);
    let (seq_secs, par_secs, allocs) = sample_paths(
        iters,
        pushes as u64,
        false,
        || {
            for &(_, hi) in &bounds {
                let prefix = series.slice(0, hi).expect("prefix in range");
                batch_plan.predict_status_into(&prefix, w, &mut batch_states);
            }
        },
        || {
            stream.reset();
            for &(lo, hi) in &bounds {
                stream.push_values(&values[lo..hi]).unwrap();
                stream.status_into(&mut stream_states);
            }
        },
    );
    build_case(
        "streaming_predict",
        len as u64,
        iters,
        identical,
        flips,
        seq_secs,
        par_secs,
        allocs,
    )
}

/// HTTP serving throughput: the closed-loop loadtest
/// ([`crate::serveload`]) against the direct-call baseline over the same
/// request sequence. The "baseline" is sequential in-process
/// single-window plan calls (what clients would pay with no server), the
/// "optimized" path is the full micro-batching HTTP server — so the
/// speedup reads as "what serving costs (HTTP + JSON framing) net of
/// what cross-request batching recovers", and parity-ish values are the
/// expected shape. `bit_identical` means the loadtest oracle saw zero
/// decision flips; `allocs_per_window` is the server's own
/// steady-allocation counter per request.
fn serve_throughput_case(scale: PerfScale, model: &Camal) -> PerfCase {
    let config = crate::serveload::LoadConfig::from_scale(scale);
    let report = crate::serveload::run(&config, model);
    let clean =
        report.flips == 0 && report.errors == 0 && report.overload_rejected > 0 && report.recovered;
    let mut case = build_case(
        "serve_throughput",
        report.requests,
        1,
        clean,
        report.flips,
        report.direct_secs,
        report.elapsed_secs,
        report.steady_allocs as f64 / report.requests.max(1) as f64,
    );
    case.serve = Some(ServeStats {
        req_per_sec: report.req_per_sec,
        p50_ms: report.p50_ms,
        p99_ms: report.p99_ms,
        mean_batch_fill: report.mean_batch_fill,
        errors: report.errors,
    });
    case
}

fn run_cases(scale: PerfScale, model: &Camal, zoo: &[(&str, &Camal)]) -> Vec<PerfCase> {
    let mut cases = vec![
        conv_forward_case(scale),
        frozen_conv_case(scale),
        ensemble_predict_case(scale),
        e2e_localize_case(scale),
        train_epoch_case(scale),
        frozen_predict_case(scale, model),
        quantized_predict_case(scale, model),
        frozen_localize_case(scale, model),
    ];
    // The backbone zoo: the same frozen-vs-mutable localization contract,
    // one case per non-ResNet architecture (ResNet is `frozen_localize`).
    // Named `backbone_*`, not `frozen_*`: the regress sentinel's SIMD
    // speedup floor calibrates to the ResNet conv stack and does not
    // transfer to attention-heavy backbones.
    for (name, backbone_model) in zoo {
        cases.push(localize_parity_case(name, scale, backbone_model));
    }
    cases.push(streaming_predict_case(scale, model));
    cases.push(serve_throughput_case(scale, model));
    cases
}

/// Run every case at `scale` once per entry of `thread_counts`; panics if
/// any parallel path breaks bit-identity or any frozen path drifts past
/// tolerance. The serving model is trained once (training is
/// thread-count-invariant by the determinism contract) and reused across
/// sweeps.
pub fn run_sweep(scale: PerfScale, smoke: bool, thread_counts: &[usize]) -> PerfReport {
    let _span = ds_obs::span!("bench.perf_suite");
    assert!(!thread_counts.is_empty(), "need at least one thread count");
    let model = trained_serving_model(scale);
    let inception = trained_backbone_model(scale, Backbone::Inception);
    let transapp = trained_backbone_model(scale, Backbone::TransApp);
    let zoo: [(&str, &Camal); 2] = [
        ("backbone_inception", &inception),
        ("backbone_transapp", &transapp),
    ];
    let mut sweeps = Vec::with_capacity(thread_counts.len());
    for &t in thread_counts {
        ds_par::set_threads(Some(t));
        let cases = run_cases(scale, &model, &zoo);
        if let Some(fp) = cases.iter().find(|c| c.name == "frozen_predict") {
            ds_obs::gauge_set("frozen.allocs_per_window", fp.allocs_per_window);
            ds_obs::gauge_set("frozen.speedup_x100", fp.speedup * 100.0);
        }
        sweeps.push(PerfSweep {
            threads: ds_par::threads(),
            cases,
        });
    }
    ds_par::set_threads(None);
    PerfReport {
        smoke,
        simd: simd::label().to_string(),
        host_cores: std::thread::available_parallelism().map_or(0, |n| n.get()),
        par_threads: ds_par::threads(),
        sweeps,
    }
}

/// [`run_sweep`] at the single ambient team size.
pub fn run_suite(scale: PerfScale, smoke: bool) -> PerfReport {
    run_sweep(scale, smoke, &[ds_par::threads()])
}

/// Render a report as aligned text tables, one per sweep, under a header
/// naming the host the numbers came from.
pub fn render(report: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "host: {} core(s), ds-par team {}, simd {}\n",
        report.host_cores, report.par_threads, report.simd
    ));
    for sweep in &report.sweeps {
        let rows: Vec<Vec<String>> = sweep
            .cases
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    format!("{}", c.elements_per_iter),
                    format!("{:.3e}", c.seq_elements_per_sec),
                    format!("{:.3e}", c.par_elements_per_sec),
                    format!("{:.2}x", c.speedup),
                    if c.bit_identical { "yes" } else { "NO" }.to_string(),
                    format!("{}", c.decision_flips),
                    format!("{:.1}", c.allocs_per_window),
                ]
            })
            .collect();
        out.push_str(&format!(
            "ds perf suite ({} worker{}, {} mode)\n{}",
            sweep.threads,
            if sweep.threads == 1 { "" } else { "s" },
            if report.smoke { "smoke" } else { "full" },
            crate::report::text_table(
                &[
                    "case",
                    "elems/iter",
                    "base elems/s",
                    "opt elems/s",
                    "speedup",
                    "identical",
                    "flips",
                    "allocs/win"
                ],
                &rows,
            )
        ));
        for case in &sweep.cases {
            if let Some(serve) = &case.serve {
                out.push_str(&format!(
                    "serving: {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms (SLO 50 ms), \
                     batch fill {:.2}, {} errors\n",
                    serve.req_per_sec,
                    serve.p50_ms,
                    serve.p99_ms,
                    serve.mean_batch_fill,
                    serve.errors,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_and_is_bit_identical() {
        let tiny = PerfScale {
            batch: 4,
            window: 64,
            iters: 1,
        };
        let report = run_suite(tiny, true);
        assert_eq!(report.sweeps.len(), 1);
        assert!(report.host_cores >= 1);
        assert!(report.par_threads >= 1);
        let cases = &report.sweeps[0].cases;
        assert_eq!(cases.len(), 12);
        for c in cases {
            assert!(c.bit_identical, "{} diverged", c.name);
            assert_eq!(c.decision_flips, 0, "{} flipped decisions", c.name);
            assert!(c.seq_secs > 0.0 && c.par_secs > 0.0);
            assert!(c.seq_elements_per_sec.is_finite());
        }
        // The frozen serving paths are allocation-free in steady state
        // (tests run with observability off).
        for name in [
            "conv_forward",
            "frozen_conv",
            "frozen_predict",
            "quantized_predict",
            "frozen_localize",
            "backbone_inception",
            "backbone_transapp",
            "streaming_predict",
            "serve_throughput",
        ] {
            let c = cases.iter().find(|c| c.name == name).unwrap();
            assert_eq!(c.allocs_per_window, 0.0, "{name} allocated");
        }
        let serve = cases
            .iter()
            .find(|c| c.name == "serve_throughput")
            .and_then(|c| c.serve.as_ref())
            .expect("serve case carries serving stats");
        assert!(serve.req_per_sec > 0.0);
        assert_eq!(serve.errors, 0);
        let table = render(&report);
        assert!(table.contains("host:"));
        assert!(table.contains("conv_forward"));
        assert!(table.contains("e2e_localize"));
        assert!(table.contains("train_epoch"));
        assert!(table.contains("frozen_predict"));
        assert!(table.contains("quantized_predict"));
        assert!(table.contains("frozen_localize"));
        assert!(table.contains("backbone_inception"));
        assert!(table.contains("backbone_transapp"));
        assert!(table.contains("streaming_predict"));
        assert!(table.contains("serve_throughput"));
        assert!(table.contains("req/s"));
    }

    #[test]
    fn sweep_produces_one_entry_per_thread_count() {
        let tiny = PerfScale {
            batch: 4,
            window: 48,
            iters: 1,
        };
        let report = run_sweep(tiny, true, &[1, 2]);
        assert_eq!(report.sweeps.len(), 2);
        assert_eq!(report.sweeps[0].threads, 1);
        assert_eq!(report.sweeps[1].threads, 2);
        for sweep in &report.sweeps {
            assert_eq!(sweep.cases.len(), 12);
        }
    }
}
