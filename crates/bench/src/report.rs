//! Report rendering and JSON persistence shared by the harness binaries.

use serde::Serialize;
use std::path::Path;

/// Print an aligned text table to stdout-bound string.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut push_row = |cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:<w$}  ",
                cell,
                w = widths.get(i).copied().unwrap_or(6)
            ));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    push_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    for row in rows {
        push_row(row);
    }
    out
}

/// Write any serializable report next to the workspace as pretty JSON.
///
/// When observability is on (`DS_OBS=summary|trace`) and the report
/// serializes to a JSON object, the current ds-obs snapshot (spans,
/// counters, gauges, histogram quantiles) is embedded under an `"obs"`
/// key. With `DS_OBS=off` the output is byte-identical to an
/// uninstrumented run.
pub fn write_json<T: Serialize>(value: &T, path: impl AsRef<Path>) -> std::io::Result<()> {
    let json = if ds_obs::enabled() {
        let mut root = serde_json::to_value(value).expect("report serialization is infallible");
        if let Some(map) = root.as_object_mut() {
            map.insert("obs".to_string(), ds_obs::snapshot());
        }
        serde_json::to_string_pretty(&root).expect("report serialization is infallible")
    } else {
        serde_json::to_string_pretty(value).expect("report serialization is infallible")
    };
    std::fs::write(path, json)
}

/// One plotted curve: marker character, method name, (labels, f1) points.
pub type LabelCurve<'a> = (char, &'a str, Vec<(u64, f64)>);

/// An ASCII scatter of label-efficiency curves on a log-x axis: one letter
/// per method, F1 on the y axis — the textual analogue of the paper's
/// Figure 3 plot.
pub fn ascii_curves(curves: &[LabelCurve<'_>], width: usize, height: usize) -> String {
    let width = width.clamp(20, 160);
    let height = height.clamp(5, 40);
    let all_points: Vec<(u64, f64)> = curves
        .iter()
        .flat_map(|(_, _, pts)| pts.iter().copied())
        .collect();
    if all_points.is_empty() {
        return String::from("(no curve data)\n");
    }
    let x_min = (all_points.iter().map(|p| p.0).min().unwrap().max(1)) as f64;
    let x_max = (all_points.iter().map(|p| p.0).max().unwrap().max(2)) as f64;
    let lx_min = x_min.ln();
    let lx_range = (x_max.ln() - lx_min).max(1e-9);
    let mut grid = vec![vec![' '; width]; height];
    for (marker, _, pts) in curves {
        for &(labels, f1) in pts {
            let x = (((labels.max(1) as f64).ln() - lx_min) / lx_range * (width - 1) as f64).round()
                as usize;
            let y = ((1.0 - f1.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x.min(width - 1)] = *marker;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            "F1 1.0 |".to_string()
        } else if r == height - 1 {
            "   0.0 |".to_string()
        } else {
            "       |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "        {}\n        {:<10} labels (log scale) {:>width$}\n",
        "-".repeat(width),
        format_labels(x_min as u64),
        format_labels(x_max as u64),
        width = width.saturating_sub(30)
    ));
    out.push_str("        legend: ");
    for (marker, name, _) in curves {
        out.push_str(&format!("{marker}={name} "));
    }
    out.push('\n');
    out
}

/// Format a label count compactly (`1.2e5`-style for large counts).
pub fn format_labels(n: u64) -> String {
    if n < 10_000 {
        n.to_string()
    } else {
        format!("{:.1e}", n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = text_table(&["Method", "F1"], &[vec!["CamAL".into(), "0.9".into()]]);
        assert!(t.starts_with("Method"));
        assert!(t.contains("CamAL"));
    }

    #[test]
    fn ascii_curves_places_points() {
        let curves: Vec<super::LabelCurve<'_>> = vec![
            ('C', "CamAL", vec![(10, 0.8), (100, 0.8)]),
            ('F', "FCN", vec![(10_000, 0.5), (1_000_000, 0.85)]),
        ];
        let plot = ascii_curves(&curves, 60, 10);
        assert!(plot.contains('C'));
        assert!(plot.contains('F'));
        assert!(plot.contains("legend: C=CamAL F=FCN"));
        assert!(plot.contains("log scale"));
        // High-F1 points sit near the top: 'C' appears in the upper half.
        let c_row = plot.lines().position(|l| l.contains('C')).unwrap();
        assert!(c_row <= 5, "CamAL marker too low: row {c_row}");
        // Empty input is graceful.
        assert!(ascii_curves(&[], 60, 10).contains("no curve data"));
    }

    #[test]
    fn labels_format() {
        assert_eq!(format_labels(42), "42");
        assert_eq!(format_labels(520_000), "5.2e5");
    }

    #[test]
    fn json_write() {
        let dir = std::env::temp_dir().join("ds_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        write_json(&vec![1, 2, 3], &path).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        std::fs::remove_file(path).ok();
    }
}
