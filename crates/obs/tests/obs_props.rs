//! Property and concurrency tests for ds-obs: bucket boundaries,
//! quantile monotonicity, counter atomicity under crossbeam threads,
//! JSONL round-trips, and the disabled-mode "emits nothing" guarantee.
//!
//! Tests that touch process-global state (level, sink, global registry)
//! serialize through `GLOBAL_LOCK`; everything else runs on private
//! `Registry` instances and can interleave freely.

use ds_obs::{Buckets, Registry};
use parking_lot::Mutex;
use proptest::prelude::*;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

proptest! {
    /// Quantiles come from cumulative bucket ranks, so they must be
    /// monotone in q and bracketed by the data for any observation set.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(0.0f64..1.0, 1..200)) {
        let registry = Registry::new();
        for &v in &values {
            registry.observe("h", v, Buckets::Unit);
        }
        let s = registry.histogram_summary("h").unwrap();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert!(s.p50 <= s.p90, "p50 {} > p90 {}", s.p50, s.p90);
        prop_assert!(s.p90 <= s.p99, "p90 {} > p99 {}", s.p90, s.p99);
        // Each quantile is an upper bucket bound, so it sits at or above
        // the true minimum and at or below one bucket past the maximum.
        prop_assert!(s.p50 >= s.min);
        prop_assert!(s.p99 <= (s.max * 20.0).ceil() / 20.0 + 1e-12);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
    }

    /// A single observation lands in the bucket whose upper bound is the
    /// smallest bound >= value, and every quantile reports that bound.
    #[test]
    fn single_value_lands_on_enclosing_bound(v in 0.0f64..=1.0) {
        let registry = Registry::new();
        registry.observe("one", v, Buckets::Unit);
        let s = registry.histogram_summary("one").unwrap();
        let expected_bound = (v * 20.0).ceil().max(1.0) / 20.0;
        prop_assert!((s.p50 - expected_bound).abs() < 1e-9,
            "value {} -> p50 {} (expected bound {})", v, s.p50, expected_bound);
        prop_assert_eq!(s.p50, s.p99);
        prop_assert_eq!(s.min, v);
        prop_assert_eq!(s.max, v);
    }

    /// Values past the last bound go to overflow, and quantiles report
    /// the observed max rather than a fictional bound.
    #[test]
    fn overflow_reports_observed_max(v in 1.0f64..1e9) {
        let registry = Registry::new();
        registry.observe("over", 1.0 + v, Buckets::Unit);
        let s = registry.histogram_summary("over").unwrap();
        prop_assert_eq!(s.p99, 1.0 + v);
    }

    /// Counter reads always equal the sum of increments, whatever the
    /// interleaving of names and deltas.
    #[test]
    fn counters_sum_exactly(deltas in prop::collection::vec((0u8..3, 0u64..1000), 0..100)) {
        let registry = Registry::new();
        let mut expected = [0u64; 3];
        for &(slot, delta) in &deltas {
            let name = ["a", "b", "c"][slot as usize];
            registry.counter_add(name, delta);
            expected[slot as usize] += delta;
        }
        prop_assert_eq!(registry.counter_get("a"), expected[0]);
        prop_assert_eq!(registry.counter_get("b"), expected[1]);
        prop_assert_eq!(registry.counter_get("c"), expected[2]);
    }
}

/// Increments from many crossbeam threads — including first-touch races
/// on a fresh name — must never be lost.
#[test]
fn counter_atomicity_under_threads() {
    let registry = Registry::new();
    const THREADS: usize = 8;
    const INCREMENTS: u64 = 10_000;
    crossbeam::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|_| {
                for _ in 0..INCREMENTS {
                    registry.counter_add("shared", 1);
                }
            });
        }
    })
    .expect("worker thread panicked");
    assert_eq!(registry.counter_get("shared"), THREADS as u64 * INCREMENTS);
}

/// Histogram recording from many threads keeps an exact total count.
#[test]
fn histogram_counts_under_threads() {
    let registry = Registry::new();
    let registry = &registry;
    crossbeam::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move |_| {
                for i in 0..5_000u64 {
                    let v = ((t * 5_000 + i) % 100) as f64 / 100.0;
                    registry.observe("p", v, Buckets::Unit);
                }
            });
        }
    })
    .expect("worker thread panicked");
    assert_eq!(registry.histogram_summary("p").unwrap().count, 20_000);
}

/// Events written to the JSONL file parse back, line by line, into the
/// same objects the in-memory ring reports.
#[test]
fn jsonl_round_trip() {
    let _guard = GLOBAL_LOCK.lock();
    ds_obs::reset();
    ds_obs::set_level(ds_obs::Level::Summary);

    let path = std::env::temp_dir().join(format!("ds_obs_roundtrip_{}.jsonl", std::process::id()));
    ds_obs::init_sink(&path).expect("sink file");
    ds_obs::event!("train_epoch", epoch = 0usize, loss = 0.75f32);
    ds_obs::event!("train_epoch", epoch = 1usize, loss = 0.5f32);
    ds_obs::event!("detect", device = "kettle", prob = 0.9f64, hit = true);
    ds_obs::flush_sink();

    let text = std::fs::read_to_string(&path).expect("read sink file");
    let parsed: Vec<ds_obs::Value> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("line parses"))
        .collect();
    assert_eq!(parsed.len(), 3);
    assert_eq!(parsed[0].get("kind").unwrap().as_str(), Some("train_epoch"));
    assert_eq!(parsed[0].get("seq").unwrap().as_u64(), Some(0));
    assert_eq!(parsed[2].get("device").unwrap().as_str(), Some("kettle"));
    assert_eq!(parsed[2].get("hit").unwrap().as_bool(), Some(true));
    assert_eq!(parsed[2].get("prob").unwrap().as_f64(), Some(0.9));

    let snapshot = ds_obs::events_snapshot();
    assert_eq!(snapshot.as_array().unwrap().as_slice(), parsed.as_slice());

    ds_obs::reset();
    ds_obs::set_level(ds_obs::Level::Off);
    let _ = std::fs::remove_file(&path);
}

/// With the level off, nothing is recorded anywhere: no metrics, no
/// spans, no events, and no file on disk.
#[test]
fn disabled_mode_emits_nothing() {
    let _guard = GLOBAL_LOCK.lock();
    ds_obs::reset();
    ds_obs::set_level(ds_obs::Level::Off);

    let path = std::env::temp_dir().join(format!("ds_obs_disabled_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    ds_obs::init_sink(&path).expect("no-op init");
    {
        let _span = ds_obs::span!("never");
        ds_obs::counter_add("never", 1);
        ds_obs::gauge_set("never", 1.0);
        ds_obs::observe("never", 0.5, Buckets::Unit);
        ds_obs::event!("never", x = 1u64);
    }

    assert!(!path.exists(), "disabled init_sink must not create a file");
    let snap = ds_obs::snapshot();
    assert_eq!(snap.get("level").unwrap().as_str(), Some("off"));
    assert_eq!(snap.get("events_recorded").unwrap().as_u64(), Some(0));
    for section in ["counters", "gauges", "histograms", "spans"] {
        let obj = snap.get(section).unwrap().as_object().unwrap();
        assert!(obj.is_empty(), "{section} should be empty when disabled");
    }
}

/// Overflowing a tiny trace ring drops whole spans (counted) but never
/// unpairs: every recorded begin keeps its recorded end, and the buffer
/// never exceeds its capacity.
#[test]
fn trace_ring_overflow_keeps_pairing() {
    let _guard = GLOBAL_LOCK.lock();
    ds_obs::reset();
    ds_obs::set_trace_capacity(16);
    ds_obs::set_level(ds_obs::Level::Trace);

    const SPANS: u64 = 64;
    // A fresh thread so the probe gets its own (16-event) buffer rather
    // than the test thread's default-capacity one.
    std::thread::spawn(|| {
        for _ in 0..SPANS {
            let _s = ds_obs::span!("ring_probe");
        }
    })
    .join()
    .expect("probe thread");
    ds_obs::set_level(ds_obs::Level::Off);

    let dropped = ds_obs::dropped_spans();
    assert!(dropped > 0, "64 spans must overflow a 16-event ring");
    let mut recorded_spans = 0u64;
    for (tid, events) in ds_obs::trace_events() {
        assert!(events.len() <= 16, "tid {tid} exceeded its capacity");
        let mut begins: Vec<u64> = events
            .iter()
            .filter(|e| e.begin)
            .map(|e| e.span_id)
            .collect();
        let mut ends: Vec<u64> = events
            .iter()
            .filter(|e| !e.begin)
            .map(|e| e.span_id)
            .collect();
        recorded_spans += begins.len() as u64;
        begins.sort_unstable();
        ends.sort_unstable();
        assert_eq!(begins, ends, "tid {tid} has an unpaired begin or end");
    }
    // Nothing vanished silently: every span is either in the buffer or
    // in the drop counter.
    assert_eq!(recorded_spans + dropped, SPANS);

    ds_obs::set_trace_capacity(ds_obs::DEFAULT_CAPACITY);
    ds_obs::reset();
}

/// Nested spans aggregate under slash-joined hierarchical paths.
#[test]
fn span_hierarchy_aggregates() {
    let _guard = GLOBAL_LOCK.lock();
    ds_obs::reset();
    ds_obs::set_level(ds_obs::Level::Summary);

    for _ in 0..3 {
        let _outer = ds_obs::span!("outer");
        for _ in 0..2 {
            let _inner = ds_obs::span!("inner");
        }
    }
    let snap = ds_obs::snapshot();
    let spans = snap.get("spans").unwrap();
    assert_eq!(
        spans.get("outer").unwrap().get("count").unwrap().as_u64(),
        Some(3)
    );
    assert_eq!(
        spans
            .get("outer/inner")
            .unwrap()
            .get("count")
            .unwrap()
            .as_u64(),
        Some(6)
    );
    let rendered = ds_obs::render_summary();
    assert!(rendered.contains("outer"));
    assert!(
        rendered.contains("  inner"),
        "expected indented child:\n{rendered}"
    );

    ds_obs::reset();
    ds_obs::set_level(ds_obs::Level::Off);
}
