//! Per-thread heap-allocation counter.
//!
//! A counting wrapper around the system allocator, installed as the
//! workspace's `#[global_allocator]` (every binary links ds-obs, so every
//! binary gets it). Each `alloc`, `alloc_zeroed`, and `realloc` bumps a
//! thread-local counter; frees are not tracked — the counter measures
//! allocation *events*, which is what a zero-alloc steady-state contract
//! cares about.
//!
//! The count is **per thread** so that a delta around a region of code
//! observes only that region's allocations: test binaries run tests on
//! sibling threads and the perf harness keeps a worker pool warm, and a
//! process-global count would pick up their traffic. The frozen inference
//! path is sequential on the calling thread, so a same-thread delta is
//! exactly its allocation count.
//!
//! Unlike the metric registry, the counter is **always on**: it must stay
//! truthful with `DS_OBS=off`, because the perf harness asserts "zero
//! allocations per window after warmup" in exactly that configuration
//! (the metric paths themselves allocate when enabled). The counter cell
//! is a const-initialized `Cell<u64>` with no destructor, so bumping it
//! inside the allocator can neither allocate nor recurse.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn bump(bytes: usize) {
    // `try_with` so allocations during thread teardown (after TLS
    // destruction) pass through uncounted instead of aborting.
    let _ = ALLOCATIONS.try_with(|n| n.set(n.get() + 1));
    let _ = ALLOC_BYTES.try_with(|n| n.set(n.get() + bytes as u64));
}

/// The counting allocator type (installed below; public only so the docs
/// can name it).
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Heap-allocation events (alloc + alloc_zeroed + realloc) performed by
/// the **calling thread** since it started. Monotonic; diff two reads to
/// count a region's allocations. Always live, independent of `DS_OBS`.
#[inline]
pub fn alloc_count() -> u64 {
    ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

/// Bytes requested by the **calling thread**'s allocation events since it
/// started (`alloc`/`alloc_zeroed` count `layout.size()`, `realloc` counts
/// the new size; frees subtract nothing). Monotonic; diff two reads to
/// attribute a region's heap traffic. Always live, independent of
/// `DS_OBS` — spans sample it to attach per-span byte deltas.
#[inline]
pub fn alloc_bytes() -> u64 {
    ALLOC_BYTES.try_with(Cell::get).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_allocation_events() {
        let before = alloc_count();
        let v: Vec<u64> = Vec::with_capacity(32);
        let mid = alloc_count();
        assert_eq!(mid, before + 1, "Vec::with_capacity is one event");
        drop(v);
        // Frees are not events, and sibling threads can't perturb us.
        assert_eq!(alloc_count(), mid);
    }

    #[test]
    fn counts_allocation_bytes() {
        let before = alloc_bytes();
        let v: Vec<u64> = Vec::with_capacity(32);
        let delta = alloc_bytes() - before;
        assert!(
            delta >= 32 * std::mem::size_of::<u64>() as u64,
            "expected at least 256 requested bytes, saw {delta}"
        );
        drop(v);
        assert_eq!(alloc_bytes() - before, delta, "frees subtract nothing");
    }

    #[test]
    fn grow_registers_as_realloc() {
        let mut v: Vec<u8> = Vec::with_capacity(4);
        v.extend_from_slice(&[0; 4]);
        let before = alloc_count();
        v.extend_from_slice(&[0; 64]); // forces growth
        assert!(alloc_count() > before);
    }

    #[test]
    fn other_threads_do_not_leak_into_this_count() {
        let before = alloc_count();
        std::thread::spawn(|| {
            let _v: Vec<u8> = Vec::with_capacity(1024);
        })
        .join()
        .unwrap();
        // Spawning allocates on *this* thread (thread handle, stack setup),
        // but the spawned thread's own Vec must not appear here; just
        // sanity-check the counter survives cross-thread traffic.
        assert!(alloc_count() >= before);
    }
}
