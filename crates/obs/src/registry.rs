//! Metric registry: monotonic counters, last-write-wins gauges, and
//! fixed-bucket histograms with quantile summaries.
//!
//! Counters and histogram bucket counts are `AtomicU64`s reached through
//! a read lock, so concurrent recording from ds-par worker threads
//! never loses increments; the write lock is only taken to insert a
//! metric the first time its name is seen.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};
use serde_json::{Map, Value};

use crate::span::SpanStore;

/// Bucket layout for [`Registry::observe`]. The layout is fixed at the
/// histogram's first observation; later calls only need a matching name.
#[derive(Debug, Clone, Copy)]
pub enum Buckets {
    /// 20 linear buckets over `[0, 1]` — probabilities and rates.
    Unit,
    /// 1–2–5 log-spaced bounds from 100 ns to 100 s — durations, in
    /// seconds.
    DurationSecs,
    /// Caller-supplied ascending upper bounds.
    Custom(&'static [f64]),
}

impl Buckets {
    fn bounds(self) -> Vec<f64> {
        match self {
            Buckets::Unit => (1..=20).map(|i| i as f64 / 20.0).collect(),
            Buckets::DurationSecs => {
                let mut bounds = Vec::with_capacity(28);
                for exp in -7..=1 {
                    for mantissa in [1.0, 2.0, 5.0] {
                        bounds.push(mantissa * 10f64.powi(exp));
                    }
                }
                bounds.push(100.0);
                bounds
            }
            Buckets::Custom(bounds) => {
                assert!(
                    bounds.windows(2).all(|w| w[0] < w[1]),
                    "custom histogram bounds must be strictly ascending"
                );
                assert!(!bounds.is_empty(), "custom histogram bounds are empty");
                bounds.to_vec()
            }
        }
    }
}

/// Running min/max/sum, guarded by a tiny mutex (bucket counts stay
/// lock-free; these three can't be a single atomic).
struct Moments {
    sum: f64,
    min: f64,
    max: f64,
}

pub(crate) struct Histogram {
    /// Ascending upper bounds; bucket `i` holds values `<= bounds[i]`
    /// (and greater than the previous bound). One extra overflow bucket
    /// sits past the last bound.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` entries; the last is the overflow bucket.
    counts: Vec<AtomicU64>,
    moments: Mutex<Moments>,
}

impl Histogram {
    fn new(buckets: Buckets) -> Histogram {
        let bounds = buckets.bounds();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            moments: Mutex::new(Moments {
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }

    fn record(&self, value: f64) {
        let idx = self
            .bounds
            .partition_point(|&bound| bound < value)
            .min(self.counts.len() - 1);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        let mut m = self.moments.lock();
        m.sum += value;
        m.min = m.min.min(value);
        m.max = m.max.max(value);
    }

    /// Observations that landed in buckets lying entirely at or above
    /// `threshold` (bucket lower bound >= threshold). Resolution is the
    /// bucket layout: a threshold on a bucket bound is exact; one inside
    /// a bucket undercounts by at most that bucket's population. SLO
    /// budgets declare their limits on bucket bounds to stay exact.
    fn count_above(&self, threshold: f64) -> u64 {
        let mut total = 0;
        for (i, c) in self.counts.iter().enumerate() {
            let lower = if i == 0 {
                f64::NEG_INFINITY
            } else {
                self.bounds[i - 1]
            };
            if lower >= threshold {
                total += c.load(Ordering::Relaxed);
            }
        }
        total
    }

    fn summary(&self) -> HistogramSummary {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let m = self.moments.lock();
        let (min, max, mean) = if count == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (m.min, m.max, m.sum / count as f64)
        };
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cumulative = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                cumulative += c;
                if cumulative >= rank {
                    // Report the bucket's upper bound; the overflow bucket
                    // has none, so fall back to the observed max.
                    return self.bounds.get(i).copied().unwrap_or(max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            mean,
            min,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time digest of one histogram. Quantiles are upper bounds of
/// the bucket containing the rank, so `p50 <= p90 <= p99` always holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

impl HistogramSummary {
    fn to_value(self) -> Value {
        let mut map = Map::new();
        map.insert("count".to_string(), Value::from(self.count));
        map.insert("mean".to_string(), Value::from(self.mean));
        map.insert("min".to_string(), Value::from(self.min));
        map.insert("max".to_string(), Value::from(self.max));
        map.insert("p50".to_string(), Value::from(self.p50));
        map.insert("p90".to_string(), Value::from(self.p90));
        map.insert("p99".to_string(), Value::from(self.p99));
        Value::Object(map)
    }
}

/// A self-contained metric registry. The process normally uses the one
/// behind [`crate::global`]; tests build their own to stay isolated.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, AtomicU64>>,
    gauges: RwLock<BTreeMap<String, AtomicU64>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    pub(crate) spans: SpanStore,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        {
            let counters = self.counters.read();
            if let Some(cell) = counters.get(name) {
                cell.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        let mut counters = self.counters.write();
        counters
            .entry(name.to_string())
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    pub fn counter_get(&self, name: &str) -> u64 {
        self.counters
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    pub fn gauge_set(&self, name: &str, value: f64) {
        let bits = value.to_bits();
        {
            let gauges = self.gauges.read();
            if let Some(cell) = gauges.get(name) {
                cell.store(bits, Ordering::Relaxed);
                return;
            }
        }
        let mut gauges = self.gauges.write();
        gauges
            .entry(name.to_string())
            .or_insert_with(|| AtomicU64::new(bits))
            .store(bits, Ordering::Relaxed);
    }

    pub fn gauge_get(&self, name: &str) -> Option<f64> {
        self.gauges
            .read()
            .get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    pub fn observe(&self, name: &str, value: f64, buckets: Buckets) {
        {
            let histograms = self.histograms.read();
            if let Some(h) = histograms.get(name) {
                h.record(value);
                return;
            }
        }
        let mut histograms = self.histograms.write();
        histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(buckets))
            .record(value);
    }

    pub fn histogram_summary(&self, name: &str) -> Option<HistogramSummary> {
        self.histograms.read().get(name).map(|h| h.summary())
    }

    /// Observations of `name` whose bucket lies entirely at or above
    /// `threshold`. `None` if the histogram doesn't exist. Exact when
    /// `threshold` is a bucket bound; see [`crate::declare_budget`].
    pub fn histogram_count_above(&self, name: &str, threshold: f64) -> Option<u64> {
        self.histograms
            .read()
            .get(name)
            .map(|h| h.count_above(threshold))
    }

    pub fn histogram_names(&self) -> Vec<String> {
        self.histograms.read().keys().cloned().collect()
    }

    pub fn counter_names(&self) -> Vec<String> {
        self.counters.read().keys().cloned().collect()
    }

    pub fn gauge_names(&self) -> Vec<String> {
        self.gauges.read().keys().cloned().collect()
    }

    /// `{counters, gauges, histograms, spans}` as a JSON value.
    pub fn snapshot(&self) -> Value {
        let mut root = Map::new();

        let counters: Map = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(v.load(Ordering::Relaxed))))
            .collect::<BTreeMap<_, _>>();
        root.insert("counters".to_string(), Value::Object(counters));

        let gauges: Map = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    Value::from(f64::from_bits(v.load(Ordering::Relaxed))),
                )
            })
            .collect::<BTreeMap<_, _>>();
        root.insert("gauges".to_string(), Value::Object(gauges));

        let histograms: Map = self
            .histograms
            .read()
            .iter()
            .map(|(k, h)| (k.clone(), h.summary().to_value()))
            .collect::<BTreeMap<_, _>>();
        root.insert("histograms".to_string(), Value::Object(histograms));

        root.insert("spans".to_string(), self.spans.snapshot());
        Value::Object(root)
    }

    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
        self.spans.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let r = Registry::new();
        assert_eq!(r.counter_get("missing"), 0);
        r.counter_add("hits", 2);
        r.counter_add("hits", 3);
        assert_eq!(r.counter_get("hits"), 5);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Registry::new();
        assert_eq!(r.gauge_get("x"), None);
        r.gauge_set("x", 1.5);
        r.gauge_set("x", -2.25);
        assert_eq!(r.gauge_get("x"), Some(-2.25));
    }

    #[test]
    fn unit_bucket_boundaries() {
        // Values exactly on a bound land in that bound's bucket
        // (bucket i holds values <= bounds[i]); values above the last
        // bound land in overflow and stretch only max, not quantiles'
        // bucket bounds below them.
        let r = Registry::new();
        for v in [0.0, 0.05, 0.05, 0.051, 1.0] {
            r.observe("p", v, Buckets::Unit);
        }
        let s = r.histogram_summary("p").unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1.0);
        // rank(p50) = 3 -> third value (0.05) is in the [0, 0.05] bucket.
        assert_eq!(s.p50, 0.05);
        assert_eq!(s.p99, 1.0);
    }

    #[test]
    fn duration_bounds_are_ascending_and_cover_wide_range() {
        let bounds = Buckets::DurationSecs.bounds();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert!(bounds[0] <= 1e-7 + 1e-12);
        assert!(*bounds.last().unwrap() >= 100.0);
    }

    #[test]
    fn overflow_bucket_reports_observed_max() {
        let r = Registry::new();
        r.observe("lat", 1_000_000.0, Buckets::DurationSecs);
        let s = r.histogram_summary("lat").unwrap();
        assert_eq!(s.p50, 1_000_000.0);
        assert_eq!(s.max, 1_000_000.0);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let h = Histogram::new(Buckets::Unit);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn custom_bounds_must_ascend() {
        let r = Registry::new();
        r.observe("bad", 1.0, Buckets::Custom(&[2.0, 1.0]));
    }

    #[test]
    fn count_above_sums_buckets_at_or_past_threshold() {
        let r = Registry::new();
        for v in [0.01, 0.04, 0.06, 0.12, 0.9] {
            r.observe("lat", v, Buckets::Unit); // bounds at 0.05 steps
        }
        // Threshold on a bound: exact. 0.06, 0.12, 0.9 live in buckets
        // whose lower bound >= 0.05; 0.01 and 0.04 live in [0, 0.05].
        assert_eq!(r.histogram_count_above("lat", 0.05), Some(3));
        assert_eq!(r.histogram_count_above("lat", 0.5), Some(1));
        assert_eq!(r.histogram_count_above("lat", 1.0), Some(0));
        assert_eq!(r.histogram_count_above("missing", 0.5), None);
    }

    #[test]
    fn snapshot_shape() {
        let r = Registry::new();
        r.counter_add("c", 1);
        r.gauge_set("g", 2.0);
        r.observe("h", 0.5, Buckets::Unit);
        let snap = r.snapshot();
        assert_eq!(
            snap.get("counters").unwrap().get("c").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(
            snap.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(2.0)
        );
        let h = snap.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert!(snap.get("spans").is_some());
    }
}
