//! Event-level tracing: per-thread fixed-capacity buffers of span
//! begin/end events, enabled at `DS_OBS=trace`.
//!
//! Where the aggregate [`crate::Registry`] collapses every span into
//! path → {count, total, min, max}, the trace keeps the *timeline*: each
//! recording thread owns a bounded buffer of [`TraceEvent`]s (begin and
//! end, timestamped against one process-wide epoch, carrying span IDs and
//! parent linkage), so per-worker busy/idle structure, dispatch fan-out
//! shape, and chunk-granularity pathologies become inspectable — directly
//! via [`thread_activity`]/[`events`] or exported to a Chrome trace-event
//! file ([`crate::export_chrome_trace`], loadable in Perfetto).
//!
//! # Overflow policy: drop-new, never block, never unpair
//!
//! Buffers are sized once at creation ([`set_trace_capacity`], default
//! [`DEFAULT_CAPACITY`] events). A full buffer drops *newly beginning*
//! spans and counts them (`dropped_spans`) instead of blocking the hot
//! path or overwriting history. Pairing is preserved by reservation: a
//! begin event is only recorded if its end event's slot can be reserved
//! at the same time, so every recorded begin has a recorded end and the
//! export never contains a dangling half of a span. Spans whose events
//! were dropped still contribute to the per-thread busy accounting, so
//! busy/idle fractions stay truthful past overflow.
//!
//! # Thread identity
//!
//! Each recording OS thread lazily acquires a buffer tagged with a small
//! stable `tid`. Buffers outlive their threads (ds-par teams are scoped
//! and re-spawned per dispatch); when a thread exits, its buffer is
//! retired to a pool and the next new thread reuses it. Reuse is safe —
//! the previous owner has exited, so one `tid` row never holds two
//! overlapping timelines — and it keeps the buffer count bounded by the
//! maximum *concurrent* thread count rather than the total spawned.
//!
//! # Cross-thread parent linkage
//!
//! A span beginning on a thread with an empty span stack adopts the
//! *inherited* parent ID installed by [`remote_parent_scope`]; ds-par
//! captures the dispatching thread's current span ID and installs it in
//! every worker closure, so `par.chunk` spans on worker threads link
//! back to the `par.dispatch` span that fanned them out.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Default per-thread event capacity (begin + end are separate events).
pub const DEFAULT_CAPACITY: usize = 32_768;

/// Per-thread buffer capacity for buffers created (or recycled) after
/// this call. Intended for tests that exercise the overflow path with a
/// tiny buffer; production runs keep [`DEFAULT_CAPACITY`].
pub fn set_trace_capacity(events: usize) {
    CAPACITY.store(events.max(4), Ordering::Relaxed);
}

static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// One span begin or end on one thread's timeline.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Process-unique span ID (shared by the begin/end pair).
    pub span_id: u64,
    /// Span ID of the parent (`0` = root). For spans that begin on a
    /// fresh worker stack this is the *dispatching* thread's span,
    /// carried across by [`remote_parent_scope`].
    pub parent_id: u64,
    /// Interned hierarchical span path (same string the registry keys).
    pub path: &'static str,
    /// `true` for the begin event, `false` for the end event.
    pub begin: bool,
    /// Nanoseconds since the process-wide trace epoch.
    pub t_ns: u64,
    /// End events: wall duration of the span. Begin events: 0.
    pub dur_ns: u64,
    /// End events: heap-allocation events performed inside the span on
    /// its thread. Begin events: 0.
    pub allocs: u64,
    /// End events: bytes requested by those allocations. Begin: 0.
    pub alloc_bytes: u64,
    /// Span-stack depth at begin (0 = top-level on its thread).
    pub depth: u32,
}

struct BufferInner {
    capacity: usize,
    events: Vec<TraceEvent>,
    /// End-event slots promised to already-recorded begin events.
    reserved: usize,
    /// Spans whose begin/end pair could not be recorded (buffer full).
    dropped_spans: u64,
    /// Completed spans (recorded or dropped) on this thread.
    spans_closed: u64,
    /// Σ duration of completed depth-0 spans — the thread's busy time
    /// (top-level spans never overlap on one thread's stack).
    busy_ns: u64,
    first_ns: u64,
    last_ns: u64,
}

impl BufferInner {
    fn new(capacity: usize) -> BufferInner {
        BufferInner {
            capacity,
            events: Vec::with_capacity(capacity),
            reserved: 0,
            dropped_spans: 0,
            spans_closed: 0,
            busy_ns: 0,
            first_ns: u64::MAX,
            last_ns: 0,
        }
    }

    fn touch(&mut self, t: u64) {
        self.first_ns = self.first_ns.min(t);
        self.last_ns = self.last_ns.max(t);
    }
}

pub(crate) struct ThreadBuffer {
    tid: u64,
    inner: Mutex<BufferInner>,
}

/// Every buffer ever created, in tid order. Buffers are never removed —
/// exited threads' timelines remain exportable until [`reset`].
static BUFFERS: Mutex<Vec<Arc<ThreadBuffer>>> = Mutex::new(Vec::new());

/// Buffers whose owning thread exited, ready for reuse by new threads.
static POOL: Mutex<Vec<Arc<ThreadBuffer>>> = Mutex::new(Vec::new());

/// Returns a buffer to the pool when its thread exits (TLS destructor).
struct LocalBuffer(Arc<ThreadBuffer>);

impl Drop for LocalBuffer {
    fn drop(&mut self) {
        POOL.lock().push(self.0.clone());
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuffer>> = const { RefCell::new(None) };
    /// Parent span ID inherited from a dispatching thread; adopted by
    /// spans that begin with an empty local stack.
    static INHERITED_PARENT: Cell<u64> = const { Cell::new(0) };
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn acquire() -> Arc<ThreadBuffer> {
    let want = CAPACITY.load(Ordering::Relaxed);
    if let Some(buf) = POOL.lock().pop() {
        let mut inner = buf.inner.lock();
        if inner.capacity != want {
            *inner = BufferInner::new(want);
        }
        drop(inner);
        return buf;
    }
    let buf = Arc::new(ThreadBuffer {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        inner: Mutex::new(BufferInner::new(want)),
    });
    BUFFERS.lock().push(buf.clone());
    buf
}

fn with_buffer<R>(f: impl FnOnce(&ThreadBuffer) -> R) -> Option<R> {
    LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            let buf = local.get_or_insert_with(|| LocalBuffer(acquire()));
            f(&buf.0)
        })
        .ok()
}

/// Whether event tracing is active (`DS_OBS=trace`).
#[inline]
pub(crate) fn tracing() -> bool {
    crate::level() == crate::Level::Trace
}

/// Outcome of [`record_begin`], threaded through the span guard so the
/// end side knows what bookkeeping it owes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TraceState {
    /// Tracing was off at span begin; the end side does nothing.
    Untraced,
    /// Tracing was on but the buffer was full; the span is counted as
    /// dropped and still feeds the busy accounting.
    Dropped,
    /// Begin recorded and the end slot reserved.
    Recorded,
}

/// Identity of one span instance, shared verbatim by its begin and end
/// events.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanRef {
    pub span_id: u64,
    pub parent_id: u64,
    pub path: &'static str,
    pub depth: u32,
}

pub(crate) fn record_begin(span: SpanRef) -> TraceState {
    if !tracing() {
        return TraceState::Untraced;
    }
    with_buffer(|buf| {
        let mut inner = buf.inner.lock();
        if inner.events.len() + inner.reserved + 2 > inner.capacity {
            inner.dropped_spans += 1;
            return TraceState::Dropped;
        }
        inner.reserved += 1;
        let t = now_ns();
        inner.touch(t);
        inner.events.push(TraceEvent {
            span_id: span.span_id,
            parent_id: span.parent_id,
            path: span.path,
            begin: true,
            t_ns: t,
            dur_ns: 0,
            allocs: 0,
            alloc_bytes: 0,
            depth: span.depth,
        });
        TraceState::Recorded
    })
    .unwrap_or(TraceState::Untraced)
}

pub(crate) fn record_end(
    state: TraceState,
    span: SpanRef,
    elapsed: Duration,
    allocs: u64,
    alloc_bytes: u64,
) {
    if state == TraceState::Untraced {
        return;
    }
    let dur_ns = elapsed.as_nanos() as u64;
    with_buffer(|buf| {
        let mut inner = buf.inner.lock();
        inner.spans_closed += 1;
        if span.depth == 0 {
            inner.busy_ns += dur_ns;
        }
        if state == TraceState::Recorded {
            inner.reserved -= 1;
            let t = now_ns();
            inner.touch(t);
            inner.events.push(TraceEvent {
                span_id: span.span_id,
                parent_id: span.parent_id,
                path: span.path,
                begin: false,
                t_ns: t,
                dur_ns,
                allocs,
                alloc_bytes,
                depth: span.depth,
            });
        }
    });
}

/// RAII guard installing an inherited parent span ID on this thread (see
/// [`remote_parent_scope`]); restores the previous value on drop.
pub struct RemoteParentGuard {
    prev: u64,
}

/// Installs `parent_id` as this thread's inherited span parent for the
/// guard's lifetime. Worker-pool dispatch sites capture
/// [`crate::current_span_id`] on the dispatching thread and install it in
/// each worker closure, so worker-side spans link back to the dispatch
/// span in the trace. Cheap and safe at any level; `0` means "no parent".
pub fn remote_parent_scope(parent_id: u64) -> RemoteParentGuard {
    let prev = INHERITED_PARENT.with(|p| p.replace(parent_id));
    RemoteParentGuard { prev }
}

impl Drop for RemoteParentGuard {
    fn drop(&mut self) {
        let _ = INHERITED_PARENT.try_with(|p| p.set(self.prev));
    }
}

/// The inherited parent for spans rooting a fresh stack on this thread.
pub(crate) fn inherited_parent() -> u64 {
    INHERITED_PARENT.try_with(Cell::get).unwrap_or(0)
}

/// Point-in-time digest of one recording thread's timeline.
#[derive(Debug, Clone)]
pub struct ThreadActivity {
    /// Small stable thread index (also the `tid` in the Chrome export).
    pub tid: u64,
    /// Buffered events (≤ the configured capacity).
    pub events: usize,
    /// Completed spans, recorded or dropped.
    pub spans_closed: u64,
    /// Spans whose events were dropped on overflow.
    pub dropped_spans: u64,
    /// Σ duration of completed top-level spans — the thread's busy time.
    pub busy_ns: u64,
    /// First event timestamp (ns since the trace epoch); `u64::MAX` if
    /// the thread never recorded.
    pub first_ns: u64,
    /// Last event timestamp (ns since the trace epoch).
    pub last_ns: u64,
}

/// Per-thread activity digests, in tid order. Empty unless `DS_OBS=trace`
/// recorded something since the last [`crate::reset`].
pub fn thread_activity() -> Vec<ThreadActivity> {
    BUFFERS
        .lock()
        .iter()
        .map(|buf| {
            let inner = buf.inner.lock();
            ThreadActivity {
                tid: buf.tid,
                events: inner.events.len(),
                spans_closed: inner.spans_closed,
                dropped_spans: inner.dropped_spans,
                busy_ns: inner.busy_ns,
                first_ns: inner.first_ns,
                last_ns: inner.last_ns,
            }
        })
        .collect()
}

/// Every thread's buffered events as `(tid, events)` pairs, in tid order.
/// This clones the buffers — an export-path affordance, not a hot-path
/// one.
pub fn events() -> Vec<(u64, Vec<TraceEvent>)> {
    BUFFERS
        .lock()
        .iter()
        .map(|buf| (buf.tid, buf.inner.lock().events.clone()))
        .collect()
}

/// Total spans dropped across all threads (buffer overflow).
pub fn dropped_spans() -> u64 {
    BUFFERS
        .lock()
        .iter()
        .map(|buf| buf.inner.lock().dropped_spans)
        .sum()
}

/// Clears every thread's buffered events and counters (capacity and tid
/// assignments survive). Called by [`crate::reset`].
pub(crate) fn reset() {
    for buf in BUFFERS.lock().iter() {
        let mut inner = buf.inner.lock();
        let cap = inner.capacity;
        *inner = BufferInner::new(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises one buffer directly (the thread-local plumbing is
    /// covered by the integration tests, which own the global level).
    #[test]
    fn reservation_keeps_pairs_and_counts_drops() {
        let buf = ThreadBuffer {
            tid: 99,
            inner: Mutex::new(BufferInner::new(4)),
        };
        let begin = |id: u64| -> TraceState {
            let mut inner = buf.inner.lock();
            if inner.events.len() + inner.reserved + 2 > inner.capacity {
                inner.dropped_spans += 1;
                return TraceState::Dropped;
            }
            inner.reserved += 1;
            inner.events.push(TraceEvent {
                span_id: id,
                parent_id: 0,
                path: "t",
                begin: true,
                t_ns: id,
                dur_ns: 0,
                allocs: 0,
                alloc_bytes: 0,
                depth: 0,
            });
            TraceState::Recorded
        };
        let end = |id: u64, state: TraceState| {
            let mut inner = buf.inner.lock();
            inner.spans_closed += 1;
            if state == TraceState::Recorded {
                inner.reserved -= 1;
                inner.events.push(TraceEvent {
                    span_id: id,
                    parent_id: 0,
                    path: "t",
                    begin: false,
                    t_ns: id + 100,
                    dur_ns: 100,
                    allocs: 0,
                    alloc_bytes: 0,
                    depth: 0,
                });
            }
        };
        // Capacity 4 fits exactly two nested spans (each reserves its
        // end slot at begin); the third begin must drop.
        let a = begin(1);
        let b = begin(2);
        let c = begin(3);
        assert_eq!(a, TraceState::Recorded);
        assert_eq!(b, TraceState::Recorded);
        assert_eq!(c, TraceState::Dropped);
        end(3, c);
        end(2, b);
        end(1, a);
        let inner = buf.inner.lock();
        assert_eq!(inner.dropped_spans, 1);
        assert_eq!(inner.spans_closed, 3);
        assert_eq!(inner.reserved, 0);
        // Every recorded begin has a recorded end: the dropped span
        // contributes neither half, never a dangling begin.
        let begins: Vec<u64> = inner
            .events
            .iter()
            .filter(|e| e.begin)
            .map(|e| e.span_id)
            .collect();
        let ends: Vec<u64> = inner
            .events
            .iter()
            .filter(|e| !e.begin)
            .map(|e| e.span_id)
            .collect();
        assert_eq!(begins, vec![1, 2]);
        assert_eq!(ends, vec![2, 1]);
    }
}
