//! SLO budgets: declared latency/quality limits on histogram quantiles,
//! evaluated into pass/fail verdicts with cumulative burn counters.
//!
//! A budget names a histogram metric, a quantile, and a maximum (e.g.
//! "`app.frozen.window_latency_s` p99 must stay <= 0.05 s"). Budgets are
//! *declared* once (typically at app startup) and *evaluated* on demand —
//! by [`crate::snapshot`], the REPL `profile` command, or tests — against
//! whatever the global registry has accumulated. Evaluation is read-only
//! except for the burn counters: each evaluation adds the number of
//! *newly observed* over-budget samples since the previous evaluation to
//! the `slo.<name>.burn` counter, so repeated evaluation is idempotent
//! and the counter tracks cumulative violations, not evaluation count.
//!
//! Over-budget samples are counted at histogram-bucket resolution
//! ([`crate::Registry::histogram_count_above`]); declare budget limits on
//! bucket bounds (the 1–2–5 duration grid) to make the count exact.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use serde_json::{Map, Value};

/// Which summary quantile a budget constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantile {
    P50,
    P90,
    P99,
}

impl Quantile {
    pub fn as_str(self) -> &'static str {
        match self {
            Quantile::P50 => "p50",
            Quantile::P90 => "p90",
            Quantile::P99 => "p99",
        }
    }
}

struct Budget {
    name: &'static str,
    metric: &'static str,
    quantile: Quantile,
    max: f64,
    /// Over-budget sample count at the last evaluation; the delta feeds
    /// the burn counter.
    last_over: AtomicU64,
}

static BUDGETS: Mutex<Vec<Budget>> = Mutex::new(Vec::new());

/// Declares (or redeclares — last call wins) a named SLO budget: the
/// `quantile` of histogram `metric` must stay `<= max`. Prefer a `max`
/// on a bucket bound of the metric's layout so burn counting is exact.
pub fn declare_budget(name: &'static str, metric: &'static str, quantile: Quantile, max: f64) {
    let mut budgets = BUDGETS.lock();
    if let Some(b) = budgets.iter_mut().find(|b| b.name == name) {
        b.metric = metric;
        b.quantile = quantile;
        b.max = max;
        b.last_over.store(0, Ordering::Relaxed);
    } else {
        budgets.push(Budget {
            name,
            metric,
            quantile,
            max,
            last_over: AtomicU64::new(0),
        });
    }
}

/// One budget's evaluation against the current global registry.
#[derive(Debug, Clone)]
pub struct BudgetVerdict {
    pub name: &'static str,
    pub metric: &'static str,
    pub quantile: Quantile,
    /// The declared limit.
    pub max: f64,
    /// The metric's current value at the budgeted quantile (0 when the
    /// histogram has no samples yet).
    pub observed: f64,
    /// Samples recorded into the metric so far.
    pub samples: u64,
    /// Cumulative samples that landed above the limit.
    pub over_budget: u64,
    /// `observed <= max`; vacuously true with no samples.
    pub pass: bool,
}

impl BudgetVerdict {
    pub(crate) fn to_value(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("metric".to_string(), Value::from(self.metric));
        obj.insert("quantile".to_string(), Value::from(self.quantile.as_str()));
        obj.insert("max".to_string(), Value::from(self.max));
        obj.insert("observed".to_string(), Value::from(self.observed));
        obj.insert("samples".to_string(), Value::from(self.samples));
        obj.insert("over_budget".to_string(), Value::from(self.over_budget));
        obj.insert("pass".to_string(), Value::from(self.pass));
        Value::Object(obj)
    }
}

/// Evaluates every declared budget against the global registry, ticking
/// burn counters for newly observed violations. Declaration order.
pub fn budget_verdicts() -> Vec<BudgetVerdict> {
    let registry = crate::global();
    let budgets = BUDGETS.lock();
    budgets
        .iter()
        .map(|b| {
            let summary = registry.histogram_summary(b.metric);
            let (observed, samples) = summary.map_or((0.0, 0), |s| {
                let q = match b.quantile {
                    Quantile::P50 => s.p50,
                    Quantile::P90 => s.p90,
                    Quantile::P99 => s.p99,
                };
                (q, s.count)
            });
            let over = registry.histogram_count_above(b.metric, b.max).unwrap_or(0);
            let prev = b.last_over.swap(over, Ordering::Relaxed);
            // The registry may have been reset since last evaluation, in
            // which case `over` restarts below `prev`; burn only forward.
            let newly = over.saturating_sub(prev);
            if newly > 0 {
                registry.counter_add(&format!("slo.{}.burn", b.name), newly);
            }
            BudgetVerdict {
                name: b.name,
                metric: b.metric,
                quantile: b.quantile,
                max: b.max,
                observed,
                samples,
                over_budget: over,
                pass: samples == 0 || observed <= b.max,
            }
        })
        .collect()
}

/// `{name: {metric, quantile, max, observed, samples, over_budget, pass}}`
/// — the `slo` section of [`crate::snapshot`].
pub(crate) fn snapshot() -> Value {
    let map: Map = budget_verdicts()
        .into_iter()
        .map(|v| (v.name.to_string(), v.to_value()))
        .collect();
    Value::Object(map)
}

/// Clears burn deltas (declarations survive; metrics were just wiped, so
/// the next evaluation restarts from zero over-budget samples).
pub(crate) fn reset() {
    for b in BUDGETS.lock().iter() {
        b.last_over.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_labels() {
        assert_eq!(Quantile::P50.as_str(), "p50");
        assert_eq!(Quantile::P90.as_str(), "p90");
        assert_eq!(Quantile::P99.as_str(), "p99");
    }

    // Budget evaluation against the global registry is covered by the
    // integration tests (obs_props), which serialize global state.
}
