//! ASCII rendering of the live profile: span tree, counters, gauges,
//! histogram quantiles. Used by the app's `obs` REPL command and by the
//! bench binaries' end-of-run summaries.

use std::fmt::Write as _;
use std::time::Duration;

use crate::registry::Registry;

/// Renders the global registry as a human-readable summary table.
pub fn render_summary() -> String {
    render_registry(crate::global(), crate::level().as_str())
}

pub(crate) fn render_registry(registry: &Registry, level: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== ds-obs summary (level={level}) ==");

    let spans = registry.spans.entries();
    if !spans.is_empty() {
        let _ = writeln!(out, "\n-- spans (wall time) --");
        let _ = writeln!(
            out,
            "{:<44} {:>7} {:>11} {:>11} {:>11} {:>10}",
            "span", "count", "total", "mean", "max", "allocs"
        );
        // Lexicographic order places children directly under parents;
        // indent by path depth and show only the leaf segment.
        for (path, stat) in &spans {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            let label = format!("{}{}", "  ".repeat(depth), leaf);
            let mean = stat.total / stat.count.max(1) as u32;
            let _ = writeln!(
                out,
                "{:<44} {:>7} {:>11} {:>11} {:>11} {:>10}",
                label,
                stat.count,
                fmt_duration(stat.total),
                fmt_duration(mean),
                fmt_duration(stat.max),
                stat.allocs,
            );
        }
    }

    let counters = registry.counter_names();
    if !counters.is_empty() {
        let _ = writeln!(out, "\n-- counters --");
        for name in counters {
            let value = registry.counter_get(&name);
            let _ = writeln!(out, "{name:<44} {value:>12}");
        }
    }

    let gauges = registry.gauge_names();
    if !gauges.is_empty() {
        let _ = writeln!(out, "\n-- gauges --");
        for name in gauges {
            let value = registry.gauge_get(&name).unwrap_or(f64::NAN);
            let _ = writeln!(out, "{:<44} {:>12}", name, fmt_value(value));
        }
    }

    let histograms = registry.histogram_names();
    if !histograms.is_empty() {
        let _ = writeln!(out, "\n-- histograms --");
        let _ = writeln!(
            out,
            "{:<32} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "mean", "p50", "p90", "p99", "max"
        );
        for name in histograms {
            if let Some(s) = registry.histogram_summary(&name) {
                let _ = writeln!(
                    out,
                    "{:<32} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    s.count,
                    fmt_value(s.mean),
                    fmt_value(s.p50),
                    fmt_value(s.p90),
                    fmt_value(s.p99),
                    fmt_value(s.max),
                );
            }
        }
    }

    if spans.is_empty()
        && registry.counter_names().is_empty()
        && registry.gauge_names().is_empty()
        && registry.histogram_names().is_empty()
    {
        let _ = writeln!(
            out,
            "(no observability data recorded; set {}=summary|trace)",
            crate::ENV_VAR
        );
    }
    out
}

/// How many hot spans the profile "top" view lists.
const PROFILE_TOP: usize = 16;

/// Renders the profiling view: hottest spans by total wall time (with
/// per-call allocation attribution), per-worker busy/idle fractions from
/// the trace buffers, and SLO budget verdicts. Backs the app's `profile`
/// REPL command. Evaluating the budgets ticks their burn counters.
pub fn render_profile() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== ds-obs profile (level={}) ==",
        crate::level().as_str()
    );

    let mut spans = crate::global().spans.entries();
    spans.sort_by_key(|(_, stat)| std::cmp::Reverse(stat.total));
    if spans.is_empty() {
        let _ = writeln!(
            out,
            "(no spans recorded; set {}=summary|trace and run a workload)",
            crate::ENV_VAR
        );
    } else {
        let _ = writeln!(out, "\n-- hot spans (by total wall time) --");
        let _ = writeln!(
            out,
            "{:<44} {:>7} {:>11} {:>11} {:>12} {:>12}",
            "span", "count", "total", "mean", "allocs/call", "bytes/call"
        );
        for (path, stat) in spans.iter().take(PROFILE_TOP) {
            let calls = stat.count.max(1);
            let _ = writeln!(
                out,
                "{:<44} {:>7} {:>11} {:>11} {:>12.1} {:>12.0}",
                path,
                stat.count,
                fmt_duration(stat.total),
                fmt_duration(stat.total / calls as u32),
                stat.allocs as f64 / calls as f64,
                stat.alloc_bytes as f64 / calls as f64,
            );
        }
        if spans.len() > PROFILE_TOP {
            let _ = writeln!(out, "... and {} more spans", spans.len() - PROFILE_TOP);
        }
    }

    let activity = crate::thread_activity();
    let recorded: Vec<_> = activity.iter().filter(|a| a.spans_closed > 0).collect();
    if recorded.is_empty() {
        let _ = writeln!(
            out,
            "\n-- workers --\n(no trace data; set {}=trace to record per-worker timelines)",
            crate::ENV_VAR
        );
    } else {
        // Busy fraction is each worker's top-level span time over the
        // global trace window, so idle = waiting while others worked.
        let window_start = recorded.iter().map(|a| a.first_ns).min().unwrap_or(0);
        let window_end = recorded.iter().map(|a| a.last_ns).max().unwrap_or(0);
        let window_ns = window_end.saturating_sub(window_start).max(1);
        let _ = writeln!(out, "\n-- workers (busy/idle over trace window) --");
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>11} {:>7} {:>7} {:>9}",
            "worker", "spans", "busy", "busy%", "idle%", "dropped"
        );
        for a in &recorded {
            let busy_frac = (a.busy_ns as f64 / window_ns as f64).min(1.0);
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>11} {:>6.1}% {:>6.1}% {:>9}",
                format!("worker-{}", a.tid),
                a.spans_closed,
                fmt_duration(Duration::from_nanos(a.busy_ns)),
                busy_frac * 100.0,
                (1.0 - busy_frac) * 100.0,
                a.dropped_spans,
            );
        }
        let _ = writeln!(
            out,
            "trace window: {}",
            fmt_duration(Duration::from_nanos(window_ns))
        );
    }

    let verdicts = crate::budget_verdicts();
    if verdicts.is_empty() {
        let _ = writeln!(out, "\n-- slo budgets --\n(no budgets declared)");
    } else {
        let _ = writeln!(out, "\n-- slo budgets --");
        for v in &verdicts {
            let status = if v.pass { "PASS" } else { "FAIL" };
            let _ = writeln!(
                out,
                "[{status}] {:<28} {} {} <= {} (observed {}, {} samples, {} over budget)",
                v.name,
                v.metric,
                v.quantile.as_str(),
                fmt_value(v.max),
                fmt_value(v.observed),
                v.samples,
                v.over_budget,
            );
        }
    }
    out
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Buckets;
    use std::time::Duration;

    #[test]
    fn renders_all_sections() {
        let r = Registry::new();
        r.counter_add("epochs", 7);
        r.gauge_set("lr", 1e-3);
        r.observe("prob", 0.4, Buckets::Unit);
        r.spans.record("train", Duration::from_millis(5), 2, 64);
        r.spans
            .record("train/step", Duration::from_micros(40), 0, 0);
        let text = render_registry(&r, "summary");
        assert!(text.contains("== ds-obs summary (level=summary) =="));
        assert!(text.contains("-- spans (wall time) --"));
        assert!(text.contains("train"));
        assert!(
            text.contains("  step"),
            "child span should be indented:\n{text}"
        );
        assert!(text.contains("epochs"));
        assert!(text.contains("lr"));
        assert!(text.contains("prob"));
    }

    #[test]
    fn empty_registry_renders_hint() {
        let r = Registry::new();
        let text = render_registry(&r, "off");
        assert!(text.contains("no observability data recorded"));
        assert!(text.contains("DS_OBS"));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(125)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(125)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
