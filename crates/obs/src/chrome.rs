//! Chrome trace-event export: writes the per-thread trace buffers as a
//! `chrome://tracing` / Perfetto-loadable JSON file, plus a validator
//! the CI trace-smoke stage and tests use to check structure without a
//! browser.
//!
//! The format is the JSON-object form of the [trace-event spec]: a
//! `traceEvents` array of `B` (begin) / `E` (end) duration events with
//! microsecond `ts` timestamps, grouped into rows by `(pid, tid)`, plus
//! `M` metadata events naming each thread row. Span IDs and parent
//! linkage ride in each begin event's `args`, allocation deltas in each
//! end event's `args`, and the overflow drop count in `otherData` — so
//! nothing the in-process buffers know is lost in export.
//!
//! [trace-event spec]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use serde_json::{Map, Value};

use crate::trace;

/// Environment variable naming the Chrome trace output file. When set,
/// instrumented binaries export on exit (and the panic hook exports on
/// crash); `DS_OBS=trace` must also be active for anything to record.
pub const TRACE_ENV: &str = "DS_TRACE";

/// What an export wrote, for logging and CI assertions.
#[derive(Debug, Clone, Copy)]
pub struct TraceStats {
    /// Begin + end events exported (metadata rows not counted).
    pub events: usize,
    /// Threads contributing at least one event.
    pub threads: usize,
    /// Spans dropped on buffer overflow (still counted, never exported).
    pub dropped_spans: u64,
}

fn event_obj(ph: &str, tid: u64, ts_us: f64, name: &str) -> Map {
    let mut obj = Map::new();
    obj.insert("ph".to_string(), Value::from(ph));
    obj.insert("pid".to_string(), Value::from(1u64));
    obj.insert("tid".to_string(), Value::from(tid));
    obj.insert("ts".to_string(), Value::from(ts_us));
    obj.insert("name".to_string(), Value::from(name));
    obj
}

/// Serializes every thread's buffered events to `path` as Chrome
/// trace-event JSON. Returns what was written. An empty trace (tracing
/// never active, or everything reset) still writes a valid file with an
/// empty `traceEvents` array.
pub fn export_chrome_trace(path: &Path) -> io::Result<TraceStats> {
    let per_thread = trace::events();
    let dropped = trace::dropped_spans();

    let mut events: Vec<Value> = Vec::new();
    let mut threads = 0usize;
    let mut total = 0usize;
    for (tid, thread_events) in &per_thread {
        if thread_events.is_empty() {
            continue;
        }
        threads += 1;
        let mut meta = event_obj("M", *tid, 0.0, "thread_name");
        let mut args = Map::new();
        args.insert("name".to_string(), Value::from(format!("worker-{tid}")));
        meta.insert("args".to_string(), Value::Object(args));
        events.push(Value::Object(meta));

        for e in thread_events {
            total += 1;
            let ts_us = e.t_ns as f64 / 1e3;
            let mut obj = event_obj(if e.begin { "B" } else { "E" }, *tid, ts_us, e.path);
            let mut args = Map::new();
            if e.begin {
                args.insert("span_id".to_string(), Value::from(e.span_id));
                args.insert("parent_id".to_string(), Value::from(e.parent_id));
                args.insert("depth".to_string(), Value::from(e.depth as u64));
            } else {
                args.insert("span_id".to_string(), Value::from(e.span_id));
                args.insert("allocs".to_string(), Value::from(e.allocs));
                args.insert("alloc_bytes".to_string(), Value::from(e.alloc_bytes));
            }
            obj.insert("args".to_string(), Value::Object(args));
            events.push(Value::Object(obj));
        }
    }

    let mut root = Map::new();
    root.insert("traceEvents".to_string(), Value::Array(events));
    root.insert("displayTimeUnit".to_string(), Value::from("ms"));
    let mut other = Map::new();
    other.insert("dropped_spans".to_string(), Value::from(dropped));
    root.insert("otherData".to_string(), Value::Object(other));

    let text = serde_json::to_string(&Value::Object(root))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut file = std::fs::File::create(path)?;
    file.write_all(text.as_bytes())?;
    file.flush()?;
    Ok(TraceStats {
        events: total,
        threads,
        dropped_spans: dropped,
    })
}

/// If `DS_TRACE` names a path, exports the trace there and returns the
/// path with the export result. Instrumented binaries call this on exit.
pub fn export_trace_from_env() -> Option<(PathBuf, io::Result<TraceStats>)> {
    let path = PathBuf::from(std::env::var(TRACE_ENV).ok()?.trim());
    if path.as_os_str().is_empty() {
        return None;
    }
    let result = export_chrome_trace(&path);
    Some((path, result))
}

/// Structural facts a validated trace file exhibited.
#[derive(Debug, Clone, Copy)]
pub struct TraceCheck {
    /// Begin/end events in the file.
    pub events: usize,
    /// Distinct tids contributing begin/end events.
    pub threads: usize,
    /// Maximum begin-nesting depth observed on any one thread.
    pub max_depth: usize,
}

/// Parses a Chrome trace file and checks structural invariants: valid
/// JSON with a `traceEvents` array, and per-tid begin/end events that
/// nest — every `E` matches the `B` on top of its thread's stack (by
/// name and `span_id`), and no stack is left open at end of file.
pub fn validate_chrome_trace(path: &Path) -> Result<TraceCheck, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let root: Value = serde_json::from_str(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = root
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("missing traceEvents array")?;

    // Per-tid stack of (name, span_id) from begin events.
    let mut stacks: BTreeMap<u64, Vec<(String, u64)>> = BTreeMap::new();
    let mut counted = 0usize;
    let mut max_depth = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(|v| v.as_str()).unwrap_or("");
        if ph != "B" && ph != "E" {
            continue;
        }
        counted += 1;
        let tid = e
            .get("tid")
            .and_then(|v| v.as_u64())
            .ok_or("event missing tid")?;
        let name = e
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("event missing name")?
            .to_string();
        let span_id = e
            .get("args")
            .and_then(|a| a.get("span_id"))
            .and_then(|v| v.as_u64())
            .ok_or("event missing args.span_id")?;
        let stack = stacks.entry(tid).or_default();
        if ph == "B" {
            stack.push((name, span_id));
            max_depth = max_depth.max(stack.len());
        } else {
            let (open_name, open_id) = stack
                .pop()
                .ok_or_else(|| format!("tid {tid}: end '{name}' with no open begin"))?;
            if open_name != name || open_id != span_id {
                return Err(format!(
                    "tid {tid}: end '{name}' (span {span_id}) does not match \
                     open begin '{open_name}' (span {open_id})"
                ));
            }
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} begin event(s) never closed",
                stack.len()
            ));
        }
    }
    let threads = stacks.len();
    Ok(TraceCheck {
        events: counted,
        threads,
        max_depth,
    })
}
