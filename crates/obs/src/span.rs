//! RAII span timers aggregating into a hierarchical wall-time profile.
//!
//! Each thread keeps a stack of active span names; a span records under
//! the `/`-joined path of that stack (e.g. `camal.train/member/epoch`),
//! so the profile renders as a tree. Worker threads (ds-par ensemble
//! members) start their own root, which is exactly the reading you want:
//! per-member wall time, not a tangle through the parent's stack.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde_json::{Map, Value};

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timings for one span path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total: Duration,
    pub min: Duration,
    pub max: Duration,
}

impl SpanStat {
    fn absorb(&mut self, elapsed: Duration) {
        self.count += 1;
        self.total += elapsed;
        self.min = self.min.min(elapsed);
        self.max = self.max.max(elapsed);
    }

    fn single(elapsed: Duration) -> SpanStat {
        SpanStat {
            count: 1,
            total: elapsed,
            min: elapsed,
            max: elapsed,
        }
    }
}

/// Path → aggregated stats; lives inside [`crate::Registry`].
#[derive(Default)]
pub(crate) struct SpanStore {
    stats: Mutex<BTreeMap<String, SpanStat>>,
}

impl SpanStore {
    pub(crate) fn record(&self, path: String, elapsed: Duration) {
        let mut stats = self.stats.lock();
        stats
            .entry(path)
            .and_modify(|s| s.absorb(elapsed))
            .or_insert_with(|| SpanStat::single(elapsed));
    }

    pub(crate) fn reset(&self) {
        self.stats.lock().clear();
    }

    /// Sorted `(path, stat)` pairs; lexicographic order puts children
    /// right after their parent, which the renderer relies on.
    pub(crate) fn entries(&self) -> Vec<(String, SpanStat)> {
        self.stats
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    pub(crate) fn snapshot(&self) -> Value {
        let map: Map = self
            .entries()
            .into_iter()
            .map(|(path, s)| {
                let mut obj = Map::new();
                obj.insert("count".to_string(), Value::from(s.count));
                obj.insert(
                    "total_ms".to_string(),
                    Value::from(s.total.as_secs_f64() * 1e3),
                );
                obj.insert(
                    "mean_us".to_string(),
                    Value::from(s.total.as_secs_f64() * 1e6 / s.count.max(1) as f64),
                );
                obj.insert("min_us".to_string(), Value::from(s.min.as_secs_f64() * 1e6));
                obj.insert("max_us".to_string(), Value::from(s.max.as_secs_f64() * 1e6));
                (path, Value::Object(obj))
            })
            .collect::<BTreeMap<_, _>>();
        Value::Object(map)
    }
}

/// RAII guard returned by [`crate::span!`]. When observability is off
/// this is an inert zero-field-ish struct: no clock read, no allocation.
pub struct Span {
    /// `None` when created with observability disabled.
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    start: Instant,
    path: String,
}

/// Starts a span timer (prefer the [`crate::span!`] macro at call sites).
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { active: None };
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    Span {
        active: Some(ActiveSpan {
            start: Instant::now(),
            path,
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed = active.start.elapsed();
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            crate::global().spans.record(active.path, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_aggregates_and_sorts() {
        let store = SpanStore::default();
        store.record("a".to_string(), Duration::from_millis(2));
        store.record("a".to_string(), Duration::from_millis(4));
        store.record("a/b".to_string(), Duration::from_millis(1));
        let entries = store.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[0].1.count, 2);
        assert_eq!(entries[0].1.total, Duration::from_millis(6));
        assert_eq!(entries[0].1.min, Duration::from_millis(2));
        assert_eq!(entries[0].1.max, Duration::from_millis(4));
        assert_eq!(entries[1].0, "a/b");
    }

    #[test]
    fn snapshot_reports_milliseconds() {
        let store = SpanStore::default();
        store.record("x".to_string(), Duration::from_millis(10));
        let snap = store.snapshot();
        let x = snap.get("x").unwrap();
        assert_eq!(x.get("count").unwrap().as_u64(), Some(1));
        let total_ms = x.get("total_ms").unwrap().as_f64().unwrap();
        assert!((total_ms - 10.0).abs() < 1.0);
    }

    #[test]
    fn disabled_span_is_inert() {
        // Uses the global level: Off by default in tests.
        crate::set_level(crate::Level::Off);
        let guard = span("never");
        assert!(guard.active.is_none());
        drop(guard);
    }
}
