//! RAII span timers aggregating into a hierarchical wall-time profile,
//! with per-span allocation attribution and (at `DS_OBS=trace`) event
//! emission into the per-thread trace buffers.
//!
//! Each thread keeps a stack of active span frames; a span records under
//! the `/`-joined path of that stack (e.g. `camal.train/member/epoch`),
//! so the profile renders as a tree. Worker threads (ds-par ensemble
//! members) start their own root, which is exactly the reading you want:
//! per-member wall time, not a tangle through the parent's stack.
//!
//! # Interned paths
//!
//! Joined paths are interned into leaked `&'static str`s keyed by
//! `(parent path identity, leaf name)`, so the steady state of a hot
//! span — same call site, same stack shape — performs **zero heap
//! allocations**: the path lookup hits the intern table, the stack frame
//! is a `Copy` push into a pre-grown `Vec`, and [`SpanStore::record`]
//! keys an existing `BTreeMap` entry by `&'static str`. This keeps the
//! per-span allocation attribution honest: a span's alloc delta measures
//! the *instrumented code*, not the instrumentation.
//!
//! # Span IDs and cross-thread linkage
//!
//! Every live span gets a process-unique nonzero ID from one atomic
//! counter. A span's parent is the frame below it on its thread's stack,
//! or — when the stack is empty — the ID installed by
//! [`crate::remote_parent_scope`], which ds-par uses to carry the
//! dispatching span's identity into worker closures. IDs only surface in
//! the trace buffers; the aggregate profile stays keyed by path.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde_json::{Map, Value};

use crate::trace::{self, TraceState};

/// One active span on a thread's stack.
#[derive(Clone, Copy)]
struct Frame {
    path: &'static str,
    id: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Process-unique span IDs; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// The span ID at the top of the calling thread's stack, or 0 if no span
/// is active. Dispatch sites capture this and hand it to
/// [`crate::remote_parent_scope`] inside worker closures so worker-side
/// spans link back to the dispatching span in the trace.
pub fn current_span_id() -> u64 {
    SPAN_STACK
        .try_with(|stack| stack.borrow().last().map_or(0, |f| f.id))
        .unwrap_or(0)
}

/// `(parent path identity, leaf name identity) → interned full path`.
/// Parent identity is the parent's interned pointer (0 for roots), so
/// lookup compares two words — no string hashing, no allocation. Entries
/// are leaked; the table is bounded by the number of distinct span-call
/// stack shapes, which is static program structure.
static INTERN: Mutex<BTreeMap<(usize, usize), &'static str>> = Mutex::new(BTreeMap::new());

fn intern_path(parent: Option<&'static str>, name: &'static str) -> &'static str {
    let key = (
        parent.map_or(0, |p| p.as_ptr() as usize),
        name.as_ptr() as usize,
    );
    let mut table = INTERN.lock();
    if let Some(&path) = table.get(&key) {
        return path;
    }
    let path: &'static str = match parent {
        // Leak the joined path once per (parent, name) pair. Roots reuse
        // the `&'static str` literal itself — nothing to build.
        Some(p) => Box::leak(format!("{p}/{name}").into_boxed_str()),
        None => name,
    };
    table.insert(key, path);
    path
}

/// Aggregated timings and allocation attribution for one span path.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total: Duration,
    pub min: Duration,
    pub max: Duration,
    /// Heap-allocation events inside this span on its own thread
    /// (summed over all records).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl SpanStat {
    fn absorb(&mut self, elapsed: Duration, allocs: u64, alloc_bytes: u64) {
        self.count += 1;
        self.total += elapsed;
        self.min = self.min.min(elapsed);
        self.max = self.max.max(elapsed);
        self.allocs += allocs;
        self.alloc_bytes += alloc_bytes;
    }

    fn single(elapsed: Duration, allocs: u64, alloc_bytes: u64) -> SpanStat {
        SpanStat {
            count: 1,
            total: elapsed,
            min: elapsed,
            max: elapsed,
            allocs,
            alloc_bytes,
        }
    }
}

/// Path → aggregated stats; lives inside [`crate::Registry`].
#[derive(Default)]
pub(crate) struct SpanStore {
    stats: Mutex<BTreeMap<&'static str, SpanStat>>,
}

impl SpanStore {
    pub(crate) fn record(
        &self,
        path: &'static str,
        elapsed: Duration,
        allocs: u64,
        alloc_bytes: u64,
    ) {
        let mut stats = self.stats.lock();
        stats
            .entry(path)
            .and_modify(|s| s.absorb(elapsed, allocs, alloc_bytes))
            .or_insert_with(|| SpanStat::single(elapsed, allocs, alloc_bytes));
    }

    pub(crate) fn reset(&self) {
        self.stats.lock().clear();
    }

    /// Sorted `(path, stat)` pairs; lexicographic order puts children
    /// right after their parent, which the renderer relies on.
    pub(crate) fn entries(&self) -> Vec<(&'static str, SpanStat)> {
        self.stats.lock().iter().map(|(&k, &v)| (k, v)).collect()
    }

    pub(crate) fn snapshot(&self) -> Value {
        let map: Map = self
            .entries()
            .into_iter()
            .map(|(path, s)| {
                let mut obj = Map::new();
                obj.insert("count".to_string(), Value::from(s.count));
                obj.insert(
                    "total_ms".to_string(),
                    Value::from(s.total.as_secs_f64() * 1e3),
                );
                obj.insert(
                    "mean_us".to_string(),
                    Value::from(s.total.as_secs_f64() * 1e6 / s.count.max(1) as f64),
                );
                obj.insert("min_us".to_string(), Value::from(s.min.as_secs_f64() * 1e6));
                obj.insert("max_us".to_string(), Value::from(s.max.as_secs_f64() * 1e6));
                obj.insert("allocs".to_string(), Value::from(s.allocs));
                obj.insert("alloc_bytes".to_string(), Value::from(s.alloc_bytes));
                (path.to_string(), Value::Object(obj))
            })
            .collect::<BTreeMap<_, _>>();
        Value::Object(map)
    }
}

/// RAII guard returned by [`crate::span!`]. When observability is off
/// this is an inert zero-field-ish struct: no clock read, no allocation.
pub struct Span {
    /// `None` when created with observability disabled.
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    link: trace::SpanRef,
    trace: TraceState,
    allocs0: u64,
    bytes0: u64,
    /// Read last in `span()` and first in `drop()`, so the measured
    /// window excludes as much of the instrumentation as possible.
    start: Instant,
}

/// Starts a span timer (prefer the [`crate::span!`] macro at call sites).
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { active: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let link = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        let path = intern_path(parent.map(|f| f.path), name);
        let parent_id = parent.map_or_else(trace::inherited_parent, |f| f.id);
        let depth = stack.len() as u32;
        stack.push(Frame { path, id });
        trace::SpanRef {
            span_id: id,
            parent_id,
            path,
            depth,
        }
    });
    let trace_state = trace::record_begin(link);
    Span {
        active: Some(ActiveSpan {
            link,
            trace: trace_state,
            allocs0: crate::alloc_count(),
            bytes0: crate::alloc_bytes(),
            start: Instant::now(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let elapsed = active.start.elapsed();
            let allocs = crate::alloc_count() - active.allocs0;
            let alloc_bytes = crate::alloc_bytes() - active.bytes0;
            let _ = SPAN_STACK.try_with(|stack| {
                stack.borrow_mut().pop();
            });
            trace::record_end(active.trace, active.link, elapsed, allocs, alloc_bytes);
            crate::global()
                .spans
                .record(active.link.path, elapsed, allocs, alloc_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_aggregates_and_sorts() {
        let store = SpanStore::default();
        store.record("a", Duration::from_millis(2), 3, 96);
        store.record("a", Duration::from_millis(4), 1, 32);
        store.record("a/b", Duration::from_millis(1), 0, 0);
        let entries = store.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[0].1.count, 2);
        assert_eq!(entries[0].1.total, Duration::from_millis(6));
        assert_eq!(entries[0].1.min, Duration::from_millis(2));
        assert_eq!(entries[0].1.max, Duration::from_millis(4));
        assert_eq!(entries[0].1.allocs, 4);
        assert_eq!(entries[0].1.alloc_bytes, 128);
        assert_eq!(entries[1].0, "a/b");
    }

    #[test]
    fn snapshot_reports_milliseconds_and_allocs() {
        let store = SpanStore::default();
        store.record("x", Duration::from_millis(10), 2, 64);
        let snap = store.snapshot();
        let x = snap.get("x").unwrap();
        assert_eq!(x.get("count").unwrap().as_u64(), Some(1));
        let total_ms = x.get("total_ms").unwrap().as_f64().unwrap();
        assert!((total_ms - 10.0).abs() < 1.0);
        assert_eq!(x.get("allocs").unwrap().as_u64(), Some(2));
        assert_eq!(x.get("alloc_bytes").unwrap().as_u64(), Some(64));
    }

    #[test]
    fn disabled_span_is_inert() {
        // Uses the global level: Off by default in tests.
        crate::set_level(crate::Level::Off);
        let guard = span("never");
        assert!(guard.active.is_none());
        drop(guard);
    }

    #[test]
    fn interning_is_stable_and_allocation_free_on_repeat() {
        let root = intern_path(None, "stable_root");
        let child1 = intern_path(Some(root), "leaf");
        let allocs_before = crate::alloc_count();
        let child2 = intern_path(Some(root), "leaf");
        let root2 = intern_path(None, "stable_root");
        assert_eq!(
            crate::alloc_count(),
            allocs_before,
            "repeat interning must not allocate"
        );
        assert!(std::ptr::eq(child1, child2));
        assert!(std::ptr::eq(root, root2));
        assert_eq!(child1, "stable_root/leaf");
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let a = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let b = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        assert!(a > 0);
        assert!(b > a);
    }
}
