//! Structured JSONL event sink.
//!
//! Events are small JSON objects — `{"seq":…, "t_ms":…, "kind":…, …}` —
//! appended to an optional file (one object per line) and mirrored into
//! a bounded in-memory ring so benches can embed recent events in their
//! reports via [`events_snapshot`]. At `Level::Trace` each event is also
//! echoed to stderr as it happens.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use parking_lot::Mutex;
use serde_json::{to_string, Map, Value};

use crate::Level;

/// In-memory ring capacity; the file (when open) receives every event.
const MEMORY_CAP: usize = 4096;

struct SinkState {
    file: Option<BufWriter<File>>,
    path: Option<PathBuf>,
    recent: VecDeque<Value>,
    seq: u64,
    epoch: Instant,
}

impl SinkState {
    fn new() -> SinkState {
        SinkState {
            file: None,
            path: None,
            recent: VecDeque::new(),
            seq: 0,
            epoch: Instant::now(),
        }
    }
}

static SINK: Mutex<Option<SinkState>> = Mutex::new(None);

fn with_sink<R>(f: impl FnOnce(&mut SinkState) -> R) -> R {
    let mut guard = SINK.lock();
    f(guard.get_or_insert_with(SinkState::new))
}

/// Opens (truncating) the JSONL file events will be appended to,
/// creating parent directories. Call once per run, before the
/// instrumented work; a no-op returning `Ok` when observability is off,
/// so call sites don't need their own level check.
pub fn init_sink(path: impl AsRef<Path>) -> io::Result<PathBuf> {
    let path = path.as_ref().to_path_buf();
    if !crate::enabled() {
        return Ok(path);
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = File::create(&path)?;
    with_sink(|sink| {
        sink.file = Some(BufWriter::new(file));
        sink.path = Some(path.clone());
        Ok(path.clone())
    })
}

/// Where events are being written, if a file sink is open.
pub fn sink_path() -> Option<PathBuf> {
    SINK.lock().as_ref().and_then(|s| s.path.clone())
}

/// Records one event. Callers go through [`crate::event!`], which
/// evaluates nothing when disabled; this function re-checks anyway so a
/// direct call is still safe.
pub fn event_record(kind: &str, fields: Vec<(&str, Value)>) {
    let level = crate::level();
    if level == Level::Off {
        return;
    }
    with_sink(|sink| {
        let mut obj = Map::new();
        obj.insert("seq".to_string(), Value::from(sink.seq));
        obj.insert(
            "t_ms".to_string(),
            Value::from(sink.epoch.elapsed().as_secs_f64() * 1e3),
        );
        obj.insert("kind".to_string(), Value::from(kind));
        for (key, value) in fields {
            obj.insert(key.to_string(), value);
        }
        sink.seq += 1;
        let event = Value::Object(obj);
        // Serializing an already-built `Value` cannot fail.
        let line = to_string(&event).unwrap_or_default();
        if level == Level::Trace {
            eprintln!("[obs] {line}");
        }
        if let Some(file) = &mut sink.file {
            // A full disk should not take the experiment down with it.
            let _ = writeln!(file, "{line}");
        }
        if sink.recent.len() == MEMORY_CAP {
            sink.recent.pop_front();
        }
        sink.recent.push_back(event);
    });
}

/// Total events recorded since startup (or the last [`reset`]).
pub fn events_recorded() -> u64 {
    SINK.lock().as_ref().map(|s| s.seq).unwrap_or(0)
}

/// The most recent events (bounded ring) as a JSON array.
pub fn events_snapshot() -> Value {
    SINK.lock()
        .as_ref()
        .map(|s| Value::Array(s.recent.iter().cloned().collect()))
        .unwrap_or(Value::Array(Vec::new()))
}

/// Flushes the file sink, if open. Benches call this before reading the
/// JSONL back or exiting.
pub fn flush_sink() {
    if let Some(sink) = SINK.lock().as_mut() {
        if let Some(file) = &mut sink.file {
            let _ = file.flush();
        }
    }
}

/// Drops all buffered events, the sequence counter, and the open file.
pub(crate) fn reset() {
    *SINK.lock() = None;
}
