//! ds-obs — a zero-dependency observability layer for the DeviceScope
//! workspace: counters, gauges, and fixed-bucket histograms with
//! p50/p90/p99 summaries; RAII span timers that aggregate into a
//! hierarchical wall-time profile; and a structured JSONL event sink.
//!
//! # Cheap when disabled
//!
//! Every recording entry point starts with [`enabled`] — a single relaxed
//! atomic load plus a branch. With `DS_OBS=off` (the default, so tests
//! stay silent) no locks are taken, no allocations happen, no files are
//! opened, and [`snapshot`] reports empty sections. The criterion bench
//! `obs_overhead` (crates/bench) pins the disabled-path cost to noise
//! relative to an uninstrumented loop.
//!
//! # Verbosity switch
//!
//! The `DS_OBS` environment variable selects the [`Level`]:
//!
//! | value                | effect                                            |
//! |----------------------|---------------------------------------------------|
//! | `off` / `0` / unset  | everything is a no-op                             |
//! | `summary` / `1`      | metrics + spans aggregate; events go to the sink  |
//! | `trace` / `2`        | as `summary`, plus events echo to stderr and every span begin/end is recorded into per-thread trace buffers (exportable to Chrome trace JSON via `DS_TRACE=path.json`) |
//!
//! Unrecognized values fall back to `off` so a typo can never break a
//! pipeline. [`set_level`] overrides the environment programmatically
//! (used by tests and the app).
//!
//! # Quick tour
//!
//! ```
//! use ds_obs as obs;
//!
//! obs::set_level(obs::Level::Summary);
//! {
//!     let _span = obs::span!("epoch");
//!     obs::counter_add("windows_seen", 128);
//!     obs::observe("detect_prob", 0.83, obs::Buckets::Unit);
//!     obs::event!("train_epoch", epoch = 3usize, loss = 0.25f32);
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.get("counters").unwrap().get("windows_seen").unwrap().as_u64(), Some(128));
//! println!("{}", obs::render_summary());
//! # obs::reset();
//! # obs::set_level(obs::Level::Off);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

mod alloc;
mod budget;
mod chrome;
mod registry;
mod render;
mod sink;
mod span;
mod trace;

pub use alloc::{alloc_bytes, alloc_count};
pub use budget::{budget_verdicts, declare_budget, BudgetVerdict, Quantile};
pub use chrome::{
    export_chrome_trace, export_trace_from_env, validate_chrome_trace, TraceCheck, TraceStats,
    TRACE_ENV,
};
pub use registry::{Buckets, HistogramSummary, Registry};
pub use render::{render_profile, render_summary};
pub use sink::{event_record, events_snapshot, flush_sink, init_sink, sink_path};
pub use span::{current_span_id, span, Span};
pub use trace::{
    dropped_spans, events as trace_events, remote_parent_scope, set_trace_capacity,
    thread_activity, RemoteParentGuard, ThreadActivity, TraceEvent, DEFAULT_CAPACITY,
};

/// Re-exported so callers (and the [`event!`] macro) can build event
/// fields without depending on serde_json themselves.
pub use serde_json::Value;

/// Observability verbosity, ordered: `Off < Summary < Trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Everything is a no-op; the default.
    Off,
    /// Aggregate metrics and spans; write events to the JSONL sink.
    Summary,
    /// `Summary`, plus each event is echoed to stderr as it happens.
    Trace,
}

impl Level {
    /// Parses a `DS_OBS` value. Unknown strings map to `Off` (observability
    /// must never turn a typo into a broken run).
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "summary" | "1" => Level::Summary,
            "trace" | "2" => Level::Trace,
            _ => Level::Off,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Summary => "summary",
            Level::Trace => "trace",
        }
    }
}

/// Environment variable that selects the level.
pub const ENV_VAR: &str = "DS_OBS";

const LEVEL_UNSET: u8 = u8::MAX;

/// Cached level; `LEVEL_UNSET` until first query resolves `DS_OBS`.
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// Current level, resolving `DS_OBS` on first call and caching the result.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Summary,
        2 => Level::Trace,
        _ => {
            let resolved = std::env::var(ENV_VAR)
                .map(|v| Level::parse(&v))
                .unwrap_or(Level::Off);
            LEVEL.store(resolved as u8, Ordering::Relaxed);
            resolved
        }
    }
}

/// Overrides the level for the rest of the process (or until the next
/// call). Takes precedence over `DS_OBS`.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// True when any recording should happen. This is the fast path every
/// instrumentation site checks first: one relaxed load, one compare.
#[inline]
pub fn enabled() -> bool {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw == LEVEL_UNSET {
        return level() != Level::Off;
    }
    raw != Level::Off as u8
}

/// The process-wide metric registry behind the free-function facade.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Adds `delta` to the named monotonic counter. No-op when disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        global().counter_add(name, delta);
    }
}

/// Sets the named gauge to `value` (last write wins). No-op when disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if enabled() {
        global().gauge_set(name, value);
    }
}

/// Records `value` into the named fixed-bucket histogram, creating it
/// with `buckets` on first use. No-op when disabled.
#[inline]
pub fn observe(name: &str, value: f64, buckets: Buckets) {
    if enabled() {
        global().observe(name, value, buckets);
    }
}

/// Full state as a `serde_json::Value`:
/// `{level, counters, gauges, histograms, spans, slo, events_recorded}`.
/// Benches embed this into their JSON reports. Evaluating the `slo`
/// section ticks budget burn counters first, so they appear coherently
/// in the same snapshot.
pub fn snapshot() -> Value {
    let slo = budget::snapshot();
    let mut snap = global().snapshot();
    if let Value::Object(map) = &mut snap {
        map.insert("level".to_string(), Value::from(level().as_str()));
        map.insert("slo".to_string(), slo);
        map.insert(
            "events_recorded".to_string(),
            Value::from(sink::events_recorded()),
        );
    }
    snap
}

/// Clears all counters, gauges, histograms, span stats, trace buffers,
/// budget burn state, and buffered events (the sink file, if any, is
/// closed). SLO budget *declarations* survive. Intended for tests and
/// the app's `obs reset`.
pub fn reset() {
    global().reset();
    sink::reset();
    trace::reset();
    budget::reset();
}

/// Installs a process panic hook (once; chains any previously installed
/// hook) that preserves telemetry from a crashing run: it records a
/// `panic` event, appends a final full [`snapshot`] event, flushes the
/// JSONL sink, and — when `DS_TRACE` is set — exports the Chrome trace.
/// A run dying under `DS_FAULT` thus still leaves usable evidence on
/// disk.
pub fn install_panic_hook() {
    static INSTALLED: std::sync::Once = std::sync::Once::new();
    INSTALLED.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if enabled() {
                let message = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string payload>".to_string());
                let location = info
                    .location()
                    .map(|l| format!("{}:{}", l.file(), l.line()))
                    .unwrap_or_else(|| "<unknown>".to_string());
                event_record(
                    "panic",
                    vec![
                        ("message", Value::from(message)),
                        ("location", Value::from(location)),
                    ],
                );
                event_record("final_snapshot", vec![("snapshot", snapshot())]);
                flush_sink();
                if let Some((path, result)) = export_trace_from_env() {
                    match result {
                        Ok(stats) => eprintln!(
                            "ds-obs: panic trace exported to {} ({} events)",
                            path.display(),
                            stats.events
                        ),
                        Err(e) => {
                            eprintln!(
                                "ds-obs: panic trace export to {} failed: {e}",
                                path.display()
                            )
                        }
                    }
                }
            }
            previous(info);
        }));
    });
}

/// Starts an RAII span timer: `let _guard = span!("conv1d_fwd");`.
/// Nested spans aggregate under a `/`-joined hierarchical path.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Records a structured event: `event!("train_epoch", epoch = 3, loss = l)`.
/// Field values go through `ds_obs::Value::from`, so any primitive,
/// `&str`, or `String` works. No-op (fields not even evaluated) when
/// disabled.
#[macro_export]
macro_rules! event {
    ($kind:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::event_record(
                $kind,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("0"), Level::Off);
        assert_eq!(Level::parse("SUMMARY"), Level::Summary);
        assert_eq!(Level::parse("1"), Level::Summary);
        assert_eq!(Level::parse(" trace "), Level::Trace);
        assert_eq!(Level::parse("2"), Level::Trace);
        assert_eq!(Level::parse("bogus"), Level::Off);
        assert_eq!(Level::parse(""), Level::Off);
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Off < Level::Summary);
        assert!(Level::Summary < Level::Trace);
    }
}
