//! # ds-par — a zero-dependency data-parallel substrate
//!
//! Chunked `par_map` / `par_for` / `par_ranges` combinators over scoped
//! worker teams (`std::thread::scope`), built for the workspace's compute
//! hot paths: ensemble member fan-out, sliding-window batches, and the
//! batch dimension of convolution forward/backward.
//!
//! ## Guarantees
//!
//! - **Deterministic result ordering.** Every combinator returns results
//!   in input order, regardless of worker count or which thread computed
//!   which chunk. Chunks are pre-assigned round-robin to workers and each
//!   writes its own output slot, so no reduction order depends on timing.
//! - **Bit-identical to sequential.** A chunk's closure observes exactly
//!   the inputs it would see under sequential execution; the combinators
//!   never reassociate caller arithmetic. Callers that reduce across
//!   chunks must pick a *fixed* chunk size (independent of the worker
//!   count) to keep reductions deterministic — see `Conv1d::backward`.
//! - **No nested oversubscription.** A combinator called from inside a
//!   ds-par worker (e.g. per-batch conv parallelism inside an ensemble
//!   member fan-out) runs sequentially on that worker.
//!
//! ## Configuration
//!
//! `DS_PAR_THREADS` selects the worker count: unset → all available
//! cores, `0` or `1` → sequential fallback, `n` → `n` workers.
//! [`set_threads`] overrides programmatically (benches and the
//! determinism property tests flip between sequential and parallel).
//!
//! ## Observability
//!
//! With `DS_OBS=summary|trace`, dispatches record a `par.dispatch` span
//! on the calling thread (total fan-out wall time including spawn/join
//! overhead) and every chunk records a `par.chunk` span on its worker, so
//! `par.dispatch − Σ par.chunk / workers` reads as thread-pool overhead.
//! Counters `par.chunks` and `par.seq_chunks` split parallel-dispatched
//! from sequentially executed chunks.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable selecting the worker count (`0`/`1` = sequential).
pub const ENV_VAR: &str = "DS_PAR_THREADS";

/// Upper bound on the worker count (a typo like `DS_PAR_THREADS=1e9`
/// parses as an error and falls back, but `999999` should not OOM).
const MAX_THREADS: usize = 256;

const UNSET: usize = usize::MAX;

/// Cached worker count; `UNSET` until first resolution.
static THREADS: AtomicUsize = AtomicUsize::new(UNSET);

thread_local! {
    /// Nesting depth: > 0 while executing inside a ds-par chunk.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn resolve_env() -> usize {
    match std::env::var(ENV_VAR) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.clamp(1, MAX_THREADS),
            Err(_) => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

/// The configured worker count (≥ 1; 1 means every combinator runs
/// sequentially). Resolves `DS_PAR_THREADS` on first call and caches.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        UNSET => {
            let resolved = resolve_env();
            THREADS.store(resolved, Ordering::Relaxed);
            resolved
        }
        n => n,
    }
}

/// Overrides the worker count for the rest of the process. `Some(0)` and
/// `Some(1)` force the sequential fallback; `None` re-resolves
/// `DS_PAR_THREADS` on the next [`threads`] call.
pub fn set_threads(n: Option<usize>) {
    let value = match n {
        Some(n) => n.clamp(1, MAX_THREADS),
        None => UNSET,
    };
    THREADS.store(value, Ordering::Relaxed);
}

/// Whether the current thread is already inside a ds-par chunk (nested
/// combinator calls run sequentially).
pub fn in_worker() -> bool {
    DEPTH.with(|d| d.get() > 0)
}

/// Environment variable setting the fan-out batch floor (work-item count
/// below which callers should skip ds-par dispatch entirely).
pub const BATCH_FLOOR_ENV: &str = "DS_PAR_BATCH_FLOOR";

/// Default fan-out floor. `par.chunk`/`par.dispatch` traces on
/// serving-size batches show dispatch (thread spawn + slot/lane setup,
/// tens of µs) costing more than the chunks it feeds once batches drop
/// below a few dozen windows — the thread-sweep rows in
/// `results/BENCH_perf.json` sat at 0.97–1.01× for exactly this reason.
const DEFAULT_BATCH_FLOOR: usize = 64;

/// Cached fan-out floor; `UNSET` until first resolution.
static BATCH_FLOOR: AtomicUsize = AtomicUsize::new(UNSET);

/// The configured fan-out floor. Resolves `DS_PAR_BATCH_FLOOR` on first
/// call and caches; `0` disables the floor (always fan out).
pub fn batch_floor() -> usize {
    match BATCH_FLOOR.load(Ordering::Relaxed) {
        UNSET => {
            let resolved = match std::env::var(BATCH_FLOOR_ENV) {
                Ok(v) => v.trim().parse::<usize>().unwrap_or(DEFAULT_BATCH_FLOOR),
                Err(_) => DEFAULT_BATCH_FLOOR,
            };
            BATCH_FLOOR.store(resolved, Ordering::Relaxed);
            resolved
        }
        n => n,
    }
}

/// Overrides the fan-out floor for the rest of the process (`None`
/// re-resolves `DS_PAR_BATCH_FLOOR` on the next [`batch_floor`] call).
pub fn set_batch_floor(n: Option<usize>) {
    BATCH_FLOOR.store(n.unwrap_or(UNSET), Ordering::Relaxed);
}

/// Whether fanning `items` independent work items across workers can pay
/// for the dispatch. False below the batch floor, with a single worker
/// configured, or inside a worker — callers take their sequential path
/// directly and skip even the dispatch bookkeeping. Purely a performance
/// hint: ds-par results are bit-identical either way, so consulting it
/// can never change an outcome.
pub fn should_fanout(items: usize) -> bool {
    threads() > 1 && !in_worker() && items >= batch_floor()
}

/// RAII depth marker for a lane of chunks.
struct LaneGuard;

impl LaneGuard {
    fn enter() -> LaneGuard {
        DEPTH.with(|d| d.set(d.get() + 1));
        LaneGuard
    }
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Worker count to use for `nchunks` independent chunks.
fn workers_for(nchunks: usize) -> usize {
    if nchunks <= 1 || in_worker() {
        1
    } else {
        threads().min(nchunks)
    }
}

/// Core executor: applies `f(index, item)` to every pre-built work item,
/// returning results in item order. Items are assigned to workers
/// round-robin; worker 0 is the calling thread.
fn run_indexed<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    let n = items.len();
    let w = workers_for(n);
    if w <= 1 {
        ds_obs::counter_add("par.seq_chunks", n as u64);
        let guard = LaneGuard::enter();
        let out = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
        drop(guard);
        return out;
    }
    let _dispatch = ds_obs::span!("par.dispatch");
    // Captured after the dispatch span begins, so worker-side spans (a
    // fresh stack per spawned thread) trace back to it as their parent.
    let parent_span = ds_obs::current_span_id();
    ds_obs::counter_add("par.chunks", n as u64);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut lanes: Vec<Vec<(usize, I, &mut Option<R>)>> = Vec::with_capacity(w);
    lanes.resize_with(w, Vec::new);
    for (i, (item, slot)) in items.into_iter().zip(slots.iter_mut()).enumerate() {
        lanes[i % w].push((i, item, slot));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let mut lanes = lanes.into_iter();
        let own = lanes.next().expect("at least one lane");
        for lane in lanes {
            std::thread::Builder::new()
                .name("ds-par".to_string())
                .spawn_scoped(scope, move || {
                    let _ctx = ds_obs::remote_parent_scope(parent_span);
                    run_lane(lane, f)
                })
                .expect("spawning a ds-par worker");
        }
        run_lane(own, f);
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk ran"))
        .collect()
}

fn run_lane<I, R, F>(lane: Vec<(usize, I, &mut Option<R>)>, f: &F)
where
    F: Fn(usize, I) -> R,
{
    let _guard = LaneGuard::enter();
    for (i, item, slot) in lane {
        let _span = ds_obs::span!("par.chunk");
        *slot = Some(f(i, item));
    }
}

/// The half-open index range of chunk `i` when `n` items are split into
/// chunks of `chunk` (the last chunk may be short).
#[inline]
fn chunk_range(i: usize, chunk: usize, n: usize) -> Range<usize> {
    let lo = i * chunk;
    lo..((lo + chunk).min(n))
}

/// Splits `0..n` into chunks of `chunk` indices and applies
/// `f(chunk_index, index_range)` to each, in parallel, returning results
/// in chunk order. `chunk` is clamped to ≥ 1; `n == 0` yields no chunks.
pub fn par_ranges<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let chunk = chunk.max(1);
    let nchunks = n.div_ceil(chunk);
    let ranges: Vec<Range<usize>> = (0..nchunks).map(|i| chunk_range(i, chunk, n)).collect();
    run_indexed(ranges, f)
}

/// Applies `f(index)` to every index in `0..n`, `chunk` indices per task.
/// Purely for side effects through `Sync` state; results are dropped.
pub fn par_for<F>(n: usize, chunk: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_ranges(n, chunk, |_, range| {
        for i in range {
            f(i);
        }
    });
}

/// Maps `f(index, &item)` over a slice with explicit chunking, returning
/// results in input order. Chunking never changes results (each item is
/// mapped independently); it only sets the task granularity.
pub fn par_map_chunked<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let per_chunk: Vec<Vec<R>> = par_ranges(items.len(), chunk, |_, range| {
        range.map(|i| f(i, &items[i])).collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Maps `f(index, &item)` over a slice, splitting items evenly across the
/// configured workers. Results come back in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let chunk = items.len().div_ceil(threads().max(1)).max(1);
    par_map_chunked(items, chunk, f)
}

/// Splits `data` into disjoint mutable chunks of `chunk_len` elements
/// (the last may be short) and applies `f(chunk_index, chunk)` to each in
/// parallel, returning the per-chunk results in chunk order.
///
/// This is the write-side primitive: batch rows of a tensor are disjoint
/// `chunk_len = channels * len` slices, so conv forward/backward can fill
/// them concurrently without locks. Callers that *reduce* the returned
/// values must keep `chunk_len` fixed (never derived from [`threads`]) so
/// the reduction tree is identical under any worker count.
pub fn par_chunks_map_mut<T, R, F>(data: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let chunk_len = chunk_len.max(1);
    let chunks: Vec<&mut [T]> = data.chunks_mut(chunk_len).collect();
    run_indexed(chunks, f)
}

/// [`par_chunks_map_mut`] for pure side-effect fills (results dropped).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_map_mut(data, chunk_len, f);
}

/// Splits two equal-length slices into paired disjoint mutable chunks of
/// `chunk_len` elements and applies `f(chunk_index, a_chunk, b_chunk)` to
/// each pair in parallel.
///
/// This exists for fused two-output fills — e.g. batch-norm training
/// writes the normalized activation *and* the `x_hat` backward cache in
/// one pass over each batch row, so both buffers chunk together.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn par_zip_chunks_mut<A, B, F>(a: &mut [A], b: &mut [B], chunk_len: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert_eq!(a.len(), b.len(), "par_zip_chunks_mut length mismatch");
    let chunk_len = chunk_len.max(1);
    let pairs: Vec<(&mut [A], &mut [B])> = a
        .chunks_mut(chunk_len)
        .zip(b.chunks_mut(chunk_len))
        .collect();
    run_indexed(pairs, |i, (ca, cb)| f(i, ca, cb));
}

/// Reduces per-slot values into one, combining **in slot order** — a
/// fixed-shape reduction whose tree depends only on the slot count, never
/// on the worker count or on timing.
///
/// The shape is deliberately the left-leaning tree (a fold): slot 0
/// absorbs slot 1, then slot 2, and so on. That is exactly the
/// accumulation order the sequential code has always used when summing
/// per-chunk gradient partials, so parallel producers + `par_reduce`
/// yield bit-identical sums to the historical single-threaded loop. A
/// balanced tree would also be deterministic, but would *change* the
/// f32/f64 rounding relative to that baseline.
///
/// The combines themselves run on the calling thread: gradient buffers
/// are kilobytes while the slot computations they summarize are the hot
/// path, so there is nothing to win by fanning the reduction out.
///
/// Returns `None` for an empty slot vector.
pub fn par_reduce<T, F>(slots: Vec<T>, mut combine: F) -> Option<T>
where
    F: FnMut(&mut T, T),
{
    let mut slots = slots.into_iter();
    let mut acc = slots.next()?;
    for slot in slots {
        combine(&mut acc, slot);
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    /// Serializes tests that touch the global thread override.
    static THREAD_LOCK: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(n));
        let out = f();
        set_threads(None);
        out
    }

    #[test]
    fn par_map_preserves_order() {
        for w in [1usize, 2, 3, 8] {
            let out = with_threads(w, || {
                let items: Vec<u64> = (0..57).collect();
                par_map(&items, |i, &x| x * 2 + i as u64)
            });
            assert_eq!(out, (0..57).map(|x| x * 3).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn par_ranges_covers_everything_once() {
        for chunk in [1usize, 3, 7, 100] {
            let ranges = with_threads(4, || par_ranges(23, chunk, |_, r| r));
            let mut seen = [false; 23];
            for r in ranges {
                for i in r {
                    assert!(!seen[i], "index {i} covered twice");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn par_for_runs_every_index() {
        let hits = AtomicU64::new(0);
        with_threads(3, || {
            par_for(100, 9, |i| {
                hits.fetch_add(i as u64 + 1, Ordering::Relaxed);
            })
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn par_chunks_mut_fills_disjoint_slices() {
        let mut data = vec![0u32; 26];
        with_threads(4, || {
            par_chunks_mut(&mut data, 8, |ci, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v = (ci * 100 + j) as u32;
                }
            })
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[7], 7);
        assert_eq!(data[8], 100);
        assert_eq!(data[24], 300);
        assert_eq!(data[25], 301);
    }

    #[test]
    fn par_chunks_map_mut_returns_in_chunk_order() {
        let mut data = vec![1.0f32; 10];
        let sums = with_threads(2, || {
            par_chunks_map_mut(&mut data, 4, |ci, chunk| (ci, chunk.len()))
        });
        assert_eq!(sums, vec![(0, 4), (1, 4), (2, 2)]);
    }

    #[test]
    fn nested_calls_run_sequentially() {
        let out = with_threads(4, || {
            par_ranges(4, 1, |_, r| {
                assert!(in_worker());
                // A nested dispatch must not spawn (it would deadlock no
                // one, but oversubscribes); it still computes correctly.
                let inner: Vec<usize> = par_ranges(3, 1, |_, ir| ir.start);
                (r.start, inner)
            })
        });
        assert_eq!(out.len(), 4);
        for (i, (start, inner)) in out.iter().enumerate() {
            assert_eq!(*start, i);
            assert_eq!(*inner, vec![0, 1, 2]);
        }
        assert!(!in_worker());
    }

    #[test]
    fn par_zip_chunks_mut_pairs_disjoint_slices() {
        let mut a = vec![0u32; 22];
        let mut b = vec![0u32; 22];
        with_threads(4, || {
            par_zip_chunks_mut(&mut a, &mut b, 8, |ci, ca, cb| {
                for (j, (va, vb)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    *va = (ci * 100 + j) as u32;
                    *vb = (ci * 1000 + j) as u32;
                }
            })
        });
        assert_eq!(a[7], 7);
        assert_eq!(a[8], 100);
        assert_eq!(b[8], 1000);
        assert_eq!(a[21], 205);
        assert_eq!(b[21], 2005);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn par_zip_chunks_mut_rejects_ragged() {
        let mut a = vec![0u8; 3];
        let mut b = vec![0u8; 4];
        par_zip_chunks_mut(&mut a, &mut b, 2, |_, _, _| {});
    }

    #[test]
    fn par_reduce_folds_in_slot_order() {
        // String concatenation is order-sensitive, so this pins the shape.
        let slots: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let out = par_reduce(slots, |acc, s| acc.push_str(&s)).unwrap();
        assert_eq!(out, "01234");
        assert_eq!(par_reduce(Vec::<u8>::new(), |_, _| {}), None);
        assert_eq!(par_reduce(vec![7u8], |_, _| unreachable!()), Some(7));
    }

    #[test]
    fn par_reduce_matches_sequential_sum_of_parallel_partials() {
        // The end-to-end determinism pattern: parallel producers fill
        // per-slot buffers, par_reduce combines them; the result must be
        // bit-identical at every worker count.
        let run = |w: usize| {
            with_threads(w, || {
                let partials: Vec<Vec<f32>> = par_ranges(40, 4, |ci, r| {
                    r.map(|i| (i as f32 * 0.37 + ci as f32).sin()).collect()
                });
                par_reduce(partials, |acc, p| {
                    for (a, v) in acc.iter_mut().zip(p) {
                        *a += v;
                    }
                })
                .unwrap()
            })
        };
        let reference = run(1);
        for w in [2usize, 3, 8] {
            let out = run(w);
            assert!(reference
                .iter()
                .zip(&out)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = with_threads(4, || par_map(&[] as &[u8], |_, &x| x));
        assert!(out.is_empty());
        assert_eq!(with_threads(4, || par_ranges(0, 5, |_, _| 1u8)), vec![]);
    }

    #[test]
    fn env_parsing_clamps() {
        // Direct resolution logic (the cache itself is process-global).
        assert_eq!(UNSET, usize::MAX);
        assert!(default_threads() >= 1);
        let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_threads(Some(0));
        assert_eq!(threads(), 1);
        set_threads(Some(100_000));
        assert_eq!(threads(), MAX_THREADS);
        set_threads(None);
        assert!(threads() >= 1);
        set_threads(None);
    }
}
