//! Property tests for the ds-par combinators: for any worker count and
//! any chunk size, outputs are bit-identical to the sequential path and
//! every index is visited exactly once. All tests mutate the process-wide
//! worker override, so they serialize through `THREAD_LOCK`.

use proptest::prelude::*;
use std::sync::Mutex;

static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ds_par::set_threads(Some(n));
    let out = f();
    ds_par::set_threads(None);
    out
}

/// A float map whose result depends on position (catches any ordering or
/// index-assignment bug, not just coverage bugs).
fn weigh(i: usize, x: f32) -> f32 {
    (x * 1.000_1 + i as f32 * 0.375).sin()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_chunked_matches_sequential(
        values in prop::collection::vec(-1.0e3f32..1.0e3, 0..120),
        workers in 0usize..9,
        chunk in 1usize..40,
    ) {
        let expected: Vec<f32> = values
            .iter()
            .enumerate()
            .map(|(i, &x)| weigh(i, x))
            .collect();
        let got = with_threads(workers, || {
            ds_par::par_map_chunked(&values, chunk, |i, &x| weigh(i, x))
        });
        // Bit-identical, not approximately equal.
        prop_assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<u32>>(),
            expected.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn par_ranges_partitions_exactly(
        n in 0usize..300,
        workers in 0usize..9,
        chunk in 1usize..50,
    ) {
        let ranges = with_threads(workers, || ds_par::par_ranges(n, chunk, |_, r| r));
        // Ranges are contiguous, ordered, and cover 0..n exactly.
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end > r.start);
            next = r.end;
        }
        prop_assert_eq!(next, n);
    }

    #[test]
    fn par_chunks_map_mut_writes_and_returns_in_order(
        n in 0usize..200,
        workers in 0usize..9,
        chunk in 1usize..33,
    ) {
        let mut data = vec![0u64; n];
        let sums = with_threads(workers, || {
            ds_par::par_chunks_map_mut(&mut data, chunk, |ci, c| {
                for (j, v) in c.iter_mut().enumerate() {
                    *v = (ci * 1000 + j) as u64;
                }
                c.iter().sum::<u64>()
            })
        });
        prop_assert_eq!(sums.len(), n.div_ceil(chunk.max(1)));
        for (i, &v) in data.iter().enumerate() {
            let (ci, j) = (i / chunk.max(1), i % chunk.max(1));
            prop_assert_eq!(v, (ci * 1000 + j) as u64);
        }
    }

    #[test]
    fn par_zip_chunks_mut_matches_sequential(
        n in 0usize..200,
        workers in 0usize..9,
        chunk in 1usize..33,
    ) {
        let mut a = vec![0.0f32; n];
        let mut b = vec![0.0f32; n];
        with_threads(workers, || {
            ds_par::par_zip_chunks_mut(&mut a, &mut b, chunk, |ci, ca, cb| {
                for (j, (va, vb)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                    *va = weigh(ci * chunk + j, 1.0);
                    *vb = *va * 2.0;
                }
            })
        });
        for (i, (&va, &vb)) in a.iter().zip(&b).enumerate() {
            prop_assert_eq!(va.to_bits(), weigh(i, 1.0).to_bits());
            prop_assert_eq!(vb.to_bits(), (weigh(i, 1.0) * 2.0).to_bits());
        }
    }

    #[test]
    fn par_reduce_is_worker_count_invariant(
        values in prop::collection::vec(-1.0e2f32..1.0e2, 0..160),
        workers in 0usize..9,
        chunk in 1usize..25,
    ) {
        // Sequential left fold over fixed-size chunk partials is the
        // reference; par_reduce over parallel-produced partials must give
        // the same bits for every worker count.
        let seq_partials: Vec<f32> = values
            .chunks(chunk)
            .map(|c| c.iter().map(|&x| weigh(0, x)).sum::<f32>())
            .collect();
        let expected = seq_partials
            .split_first()
            .map(|(head, tail)| tail.iter().fold(*head, |acc, p| acc + p));
        let got = with_threads(workers, || {
            let partials = ds_par::par_ranges(values.len(), chunk, |_, r| {
                r.map(|i| weigh(0, values[i])).sum::<f32>()
            });
            ds_par::par_reduce(partials, |acc, p| *acc += p)
        });
        prop_assert_eq!(got.map(f32::to_bits), expected.map(f32::to_bits));
    }

    #[test]
    fn par_for_touches_each_index_once(
        n in 0usize..256,
        workers in 0usize..9,
        chunk in 1usize..64,
    ) {
        let hits: Vec<std::sync::atomic::AtomicU8> =
            (0..n).map(|_| std::sync::atomic::AtomicU8::new(0)).collect();
        with_threads(workers, || {
            ds_par::par_for(n, chunk, |i| {
                hits[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            })
        });
        for (i, h) in hits.iter().enumerate() {
            prop_assert_eq!(h.load(std::sync::atomic::Ordering::Relaxed), 1, "index {}", i);
        }
    }
}
