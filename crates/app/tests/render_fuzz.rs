//! Fuzz-style property tests of the text renderers: no input — including
//! NaN-ridden, constant, or extreme series — may panic or produce
//! malformed output.

use ds_app::plot::{line_chart, probability_bar, status_strip, table};
use ds_timeseries::TimeSeries;
use proptest::prelude::*;

fn messy_values() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            4 => (-1.0e6f32..1.0e6).boxed(),
            1 => Just(f32::NAN).boxed(),
            1 => Just(0.0f32).boxed(),
        ],
        0..500,
    )
}

proptest! {
    #[test]
    fn line_chart_never_panics(values in messy_values(), w in 0usize..300, h in 0usize..60) {
        let ts = TimeSeries::from_values(0, 60, values);
        let chart = line_chart(&ts, w, h);
        prop_assert!(!chart.is_empty());
        // Every line is bounded by the clamped width plus the axis label.
        for line in chart.lines() {
            prop_assert!(line.chars().count() <= 200 + 12, "line too long");
        }
    }

    #[test]
    fn status_strip_has_requested_width(states in prop::collection::vec(0u8..2, 0..400), w in 0usize..300) {
        let strip = status_strip(&states, w);
        let expected = w.clamp(8, 200);
        prop_assert_eq!(strip.chars().count(), expected);
        prop_assert!(strip.chars().all(|c| c == '█' || c == '─'));
    }

    #[test]
    fn probability_bar_handles_any_float(p in prop::num::f32::ANY, w in 0usize..200) {
        // NaN and infinities must render, not panic.
        let bar = probability_bar("x", p, w);
        prop_assert!(bar.contains('['));
        prop_assert!(bar.contains(']'));
    }

    #[test]
    fn table_never_panics(
        rows in prop::collection::vec(prop::collection::vec(".{0,20}", 0..5), 0..10)
    ) {
        let out = table(&["A", "B", "C"], &rows);
        prop_assert!(out.lines().count() >= 2);
    }
}
