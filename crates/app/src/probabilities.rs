//! The model-detection-probabilities view (Figure 5-A.3): per-member and
//! ensemble probabilities for each selected appliance in the current window.

use crate::plot::probability_bar;
use crate::state::{AppError, AppState};
use ds_timeseries::missing::{impute, Imputation};

/// Render the probabilities view for all selected appliances.
pub fn render(state: &mut AppState) -> Result<String, AppError> {
    if state.selected.is_empty() {
        return Ok("select at least one appliance to see detection probabilities\n".into());
    }
    let window = state.current_window()?;
    // Detection runs on a linearly imputed copy of the window; when any
    // samples were missing the view says so up front, because the
    // probabilities below were computed over partly fabricated input.
    let missing = window.missing_count();
    let clean = impute(&window, Imputation::Linear).into_values();
    let selected = state.selected.clone();
    let mut out = String::from("── Model detection probabilities ──\n");
    if missing > 0 {
        out.push_str(&format!(
            "⚠ degraded window: {missing}/{} samples missing (imputed for detection)\n",
            window.len()
        ));
    }
    for kind in selected {
        let detection = state.frozen_detect(kind, &clean)?;
        out.push_str(&format!("{}\n", kind.name()));
        for (kernel, p) in &detection.member_probabilities {
            out.push_str(&format!(
                "  {}\n",
                probability_bar(&format!("ResNet k={kernel}"), *p, 30)
            ));
        }
        out.push_str(&format!(
            "  {}  {}\n",
            probability_bar("ensemble", detection.probability, 30),
            if detection.detected {
                "DETECTED"
            } else {
                "not detected"
            }
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AppConfig;
    use ds_datasets::DatasetPreset;
    use ds_timeseries::window::WindowLength;

    #[test]
    fn renders_member_bars() {
        let mut state = AppState::new(AppConfig::fast_test());
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state.toggle_appliance("kettle").unwrap();
        let view = render(&mut state).unwrap();
        assert!(view.contains("Model detection probabilities"));
        assert!(view.contains("ResNet k=3")); // fast_test kernels are {3,5}
        assert!(view.contains("ResNet k=5"));
        assert!(view.contains("ensemble"));
        assert!(view.contains("DETECTED") || view.contains("not detected"));
    }

    #[test]
    fn empty_selection_prompts_user() {
        let mut state = AppState::new(AppConfig::fast_test());
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        let view = render(&mut state).unwrap();
        assert!(view.contains("select at least one appliance"));
    }
}
