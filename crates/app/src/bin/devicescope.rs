//! The DeviceScope terminal application.
//!
//! ```text
//! devicescope                          # interactive REPL (fast models)
//! devicescope --quality                # interactive REPL (paper-scale models)
//! devicescope --bench table.json      # preload a benchmark table for B frames
//! devicescope scenario 1|2|3           # run a §IV demonstration scenario
//! devicescope render <dataset> <house> # one-shot playground render
//! ```

use ds_app::repl::Repl;
use ds_app::state::{AppConfig, AppState};
use ds_app::{benchmark_frame, playground, scenarios};
use ds_datasets::ApplianceKind;
use ds_metrics::aggregate::BenchmarkTable;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    ds_obs::install_panic_hook();
    let code = run();
    // `DS_OBS=trace` + `DS_TRACE=path.json`: leave the session's span
    // timeline on disk for Perfetto.
    if let Some((path, result)) = ds_obs::export_trace_from_env() {
        match result {
            Ok(stats) => eprintln!(
                "trace exported to {} ({} events, {} threads)",
                path.display(),
                stats.events,
                stats.threads
            ),
            Err(e) => eprintln!("trace export to {} failed: {e}", path.display()),
        }
    }
    code
}

fn run() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quality = false;
    let mut bench_path: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quality" => quality = true,
            "--bench" => bench_path = it.next(),
            "--help" | "-h" => {
                println!("{}", Repl::help());
                return ExitCode::SUCCESS;
            }
            _ => positional.push(arg),
        }
    }

    let config = if quality {
        AppConfig::default()
    } else {
        // Responsive defaults: small ensemble, few epochs — good enough for
        // interactive exploration; pass --quality for paper-scale models.
        AppConfig {
            camal: ds_camal::CamalConfig {
                kernel_sizes: vec![5, 9],
                channels: vec![8, 16],
                train: ds_neural::train::TrainConfig {
                    epochs: 10,
                    ..ds_neural::train::TrainConfig::default()
                },
                ..ds_camal::CamalConfig::default()
            },
            houses: 4,
            days: 4,
        }
    };

    let bench: Option<BenchmarkTable> = match bench_path {
        Some(path) => match benchmark_frame::load_table(std::path::Path::new(&path)) {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("failed to load benchmark table {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let mut state = AppState::new(config);
    match positional.first().map(String::as_str) {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut repl = Repl::new(state, bench);
            if let Err(e) = repl.run(stdin.lock(), stdout.lock()) {
                eprintln!("io error: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Some("scenario") => {
            let which = positional.get(1).map(String::as_str).unwrap_or("1");
            let result = match which {
                "1" => scenarios::scenario_1(&mut state).map_err(|e| e.to_string()),
                "2" => {
                    let kind = positional
                        .get(2)
                        .and_then(|s| ApplianceKind::parse(s))
                        .unwrap_or(ApplianceKind::Kettle);
                    scenarios::scenario_2(&mut state, kind).map_err(|e| e.to_string())
                }
                "3" => match &bench {
                    Some(b) => Ok(scenarios::scenario_3(
                        b,
                        positional.get(2).map(String::as_str).unwrap_or("UKDALE"),
                        "F1",
                    )),
                    None => Err("scenario 3 needs --bench <table.json>".to_string()),
                },
                other => Err(format!("unknown scenario {other:?}")),
            };
            emit(result)
        }
        Some("render") => {
            let dataset = positional
                .get(1)
                .cloned()
                .unwrap_or_else(|| "UKDALE".into());
            let house: u32 = positional
                .get(2)
                .and_then(|h| h.parse().ok())
                .or_else(|| {
                    ds_datasets::DatasetPreset::parse(&dataset)
                        .and_then(|p| state.browsable_houses(p).first().copied())
                })
                .unwrap_or(0);
            let result = state
                .load(&dataset, house)
                .and_then(|()| playground::render(&mut state))
                .map_err(|e| e.to_string());
            emit(result)
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; try --help");
            ExitCode::FAILURE
        }
    }
}

fn emit(result: Result<String, String>) -> ExitCode {
    match result {
        Ok(text) => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(text.as_bytes());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
