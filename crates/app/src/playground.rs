//! The playground frame (Figure 5-A.1): the aggregate window chart with
//! Prev/Next paging and, when appliances are selected, the predicted status
//! strip of each appliance under the chart.

use crate::plot::{line_chart, tri_status, tri_status_strip};
use crate::state::{AppError, AppState};

/// Chart width in columns used by every playground view.
pub const CHART_WIDTH: usize = 72;
/// Chart height in rows.
pub const CHART_HEIGHT: usize = 10;

/// Render the playground frame for the current window.
pub fn render(state: &mut AppState) -> Result<String, AppError> {
    let window = state.current_window()?;
    let (idx, count) = state.page()?;
    let dataset = state.dataset.map(|d| d.name()).unwrap_or("?");
    let house = state.house_id.unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "── Playground ── dataset {dataset}, house {house}, window {}/{} ({}) ──\n",
        idx + 1,
        count,
        state.window_length.label()
    ));
    out.push_str(&line_chart(&window, CHART_WIDTH, CHART_HEIGHT));
    if !state.selected.is_empty() {
        out.push_str("\npredicted appliance status (CamAL):\n");
        for (kind, loc) in state.localize_selected()? {
            let marker = if loc.detection.detected { "✓" } else { " " };
            // Gap timesteps render as `▒` (unknown): their decisions came
            // from imputed input, not measured power.
            let tri = tri_status(&loc.status, window.values());
            out.push_str(&format!(
                "{marker} {:<16} {}  p={:.2}\n",
                kind.name(),
                &tri_status_strip(&tri, CHART_WIDTH),
                loc.detection.probability
            ));
        }
    }
    out.push_str("\n[prev] [next]  window length: 6h | 12h | 1d\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AppConfig;
    use ds_datasets::DatasetPreset;
    use ds_timeseries::window::WindowLength;

    fn loaded_app() -> AppState {
        let mut state = AppState::new(AppConfig::fast_test());
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state
    }

    #[test]
    fn renders_header_and_chart() {
        let mut state = loaded_app();
        let view = render(&mut state).unwrap();
        assert!(view.contains("Playground"));
        assert!(view.contains("UKDALE"));
        assert!(view.contains("window 1/"));
        assert!(view.contains("6 hours"));
        assert!(view.contains('█'));
        assert!(view.contains("[prev] [next]"));
    }

    #[test]
    fn renders_status_strips_for_selected() {
        let mut state = loaded_app();
        state.toggle_appliance("kettle").unwrap();
        let view = render(&mut state).unwrap();
        assert!(view.contains("predicted appliance status"));
        assert!(view.contains("Kettle"));
        assert!(view.contains("p="));
    }

    #[test]
    fn paging_changes_header() {
        let mut state = loaded_app();
        let v1 = render(&mut state).unwrap();
        state.next().unwrap();
        let v2 = render(&mut state).unwrap();
        assert!(v1.contains("window 1/"));
        assert!(v2.contains("window 2/"));
        assert_ne!(v1, v2);
    }

    #[test]
    fn requires_loaded_series() {
        let mut state = AppState::new(AppConfig::fast_test());
        assert!(render(&mut state).is_err());
    }
}
