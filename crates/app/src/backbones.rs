//! The backbone comparison view: one row per detector architecture for
//! each selected appliance — whole-series localization quality against
//! the ground-truth status next to the frozen plan's per-window serving
//! latency — so architectures are compared on accuracy *and* speed, the
//! two axes the model zoo trades between.
//!
//! Each row trains (on first use) and serves a full single-backbone
//! ensemble at the session's precision; models and plans stay cached
//! under their backbone-tagged keys, so re-rendering the table is cheap
//! and the session backbone is restored when the view is done.

use crate::state::{AppError, AppState};
use ds_camal::Backbone;
use ds_datasets::ApplianceKind;
use ds_timeseries::missing::{impute, Imputation};
use std::time::Instant;

/// Serving-latency probe repetitions per backbone. The table reports the
/// fastest repetition: the first call may fold (or quantize) a plan, and
/// the steady-state latency is what the serving SLO is about.
const LATENCY_REPS: usize = 5;

/// Render the comparison table for `kinds` (the selected appliances).
pub fn render(state: &mut AppState, kinds: &[ApplianceKind]) -> Result<String, AppError> {
    let original = state.backbone();
    let result = render_rows(state, kinds);
    state.set_backbone(original);
    result
}

fn render_rows(state: &mut AppState, kinds: &[ApplianceKind]) -> Result<String, AppError> {
    let window = state.current_window()?;
    let clean = impute(&window, Imputation::Linear).into_values();
    let mut out = String::new();
    for &kind in kinds {
        out.push_str(&format!(
            "── Backbone comparison: {} ({} precision) ──\n",
            kind.name(),
            state.precision().label()
        ));
        out.push_str("backbone    acc   bacc  f1    window ms\n");
        for backbone in Backbone::ALL {
            state.set_backbone(backbone);
            let truth = state.series_truth(kind)?;
            let predicted = state.predicted_status(kind)?.as_binary();
            let m = ds_metrics::localization::score_status(&predicted, &truth);
            let mut best = f64::INFINITY;
            for _ in 0..LATENCY_REPS {
                let start = Instant::now();
                let _ = state.frozen_localize(kind, &clean)?;
                best = best.min(start.elapsed().as_secs_f64());
            }
            out.push_str(&format!(
                "{:<10}  {:.2}  {:.2}  {:.2}  {:9.2}\n",
                backbone.label(),
                m.accuracy,
                m.balanced_accuracy,
                m.f1,
                best * 1e3,
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AppConfig;
    use ds_datasets::DatasetPreset;
    use ds_timeseries::window::WindowLength;

    #[test]
    fn table_covers_every_backbone_and_restores_the_session() {
        let mut state = AppState::new(AppConfig::fast_test());
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state.set_backbone(Backbone::TransApp);
        let view = render(&mut state, &[ApplianceKind::Kettle]).unwrap();
        assert!(view.contains("Backbone comparison: Kettle"), "{view}");
        for backbone in Backbone::ALL {
            assert!(view.contains(backbone.label()), "{view}");
        }
        assert!(view.contains("window ms"));
        // The session backbone survives the sweep.
        assert_eq!(state.backbone(), Backbone::TransApp);
    }
}
