//! # ds-app
//!
//! The DeviceScope application (paper §III–§IV), reimplemented as a
//! terminal program with the same information architecture as the Streamlit
//! original:
//!
//! - **Playground frame** (Figure 5-A): browse a consumption series in
//!   6 h / 12 h / 1 day windows with Prev/Next, overlay predicted appliance
//!   status strips ([`playground`]), inspect per-device ground truth
//!   ([`perdevice`]) and per-member detection probabilities
//!   ([`probabilities`]).
//! - **Benchmark frame** (Figure 5-B): browse detection/localization
//!   measures per dataset × appliance × method, and compare methods by the
//!   number of labels they needed ([`benchmark_frame`]).
//! - **Demonstration scenarios** (§IV): the three guided walkthroughs
//!   ([`scenarios`]), with the appliance-pattern expander ([`patterns`]).
//! - **Consumption insights** ([`insights`]): the per-appliance energy
//!   breakdown motivating the paper's conclusion (identify over-consuming
//!   devices).
//!
//! Rendering is plain text ([`plot`]), so every view is deterministic and
//! unit-testable; the `devicescope` binary wires the views to an
//! interactive REPL ([`repl`]).

pub mod backbones;
pub mod benchmark_frame;
pub mod cache;
pub mod insights;
pub mod patterns;
pub mod perdevice;
pub mod playground;
pub mod plot;
pub mod probabilities;
pub mod repl;
pub mod scenarios;
pub mod state;

pub use state::AppState;

/// Serializes tests that flip the process-global ds-obs level (shared by
/// the repl and cache test modules; the level is a process global).
#[cfg(test)]
pub(crate) fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
