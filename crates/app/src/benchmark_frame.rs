//! The benchmark frame (Figure 5-B): browse stored benchmark results per
//! dataset, compare methods on any measure, and compare the number of
//! labels each method needed — CamAL's headline advantage.
//!
//! The frame renders a [`BenchmarkTable`] (produced by the `ds-bench`
//! harness and saved as JSON), so the app never retrains anything here.

use crate::plot::table;
use ds_metrics::aggregate::BenchmarkTable;
use ds_metrics::Measures;

/// Render the per-dataset results grid (element B.1): one row per
/// (appliance, method), detection and localization F1 plus the selected
/// measure.
pub fn render_dataset(bench: &BenchmarkTable, dataset: &str, measure: &str) -> String {
    let cells = bench.for_dataset(dataset);
    if cells.is_empty() {
        return format!("no benchmark results for dataset {dataset:?}\n");
    }
    let mut rows = Vec::new();
    for c in &cells {
        let det = c.detection.by_name(measure).unwrap_or(f64::NAN);
        let loc = c.localization.by_name(measure).unwrap_or(f64::NAN);
        rows.push(vec![
            c.appliance.clone(),
            c.method.clone(),
            format!("{det:.3}"),
            format!("{loc:.3}"),
            format!("{}", c.labels_used),
        ]);
    }
    let mut out = format!("── Benchmark: {dataset} (measure: {measure}) ──\n");
    out.push_str(&table(
        &["Appliance", "Method", "Detection", "Localization", "Labels"],
        &rows,
    ));
    out
}

/// Render the label-efficiency comparison (element B.2): methods ranked by
/// mean localization F1, with the labels they consumed.
pub fn render_label_comparison(bench: &BenchmarkTable) -> String {
    let means = bench.method_means();
    if means.is_empty() {
        return "no benchmark results loaded\n".to_string();
    }
    let mut entries: Vec<(String, Measures, u64)> = means
        .into_iter()
        .map(|(method, m)| {
            let labels: u64 = bench
                .for_method(&method)
                .iter()
                .map(|c| c.labels_used)
                .max()
                .unwrap_or(0);
            (method, m, labels)
        })
        .collect();
    entries.sort_by(|a, b| b.1.f1.partial_cmp(&a.1.f1).expect("f1 finite"));
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|(method, m, labels)| {
            vec![method.clone(), format!("{:.3}", m.f1), format!("{labels}")]
        })
        .collect();
    let mut out = String::from("── Comparison with SotA NILM approaches ──\n");
    out.push_str(&table(
        &["Method", "Mean localization F1", "Labels needed"],
        &rows,
    ));
    if let (Some(first), Some(last)) = (entries.first(), entries.last()) {
        out.push_str(&format!(
            "\nbest method: {} (F1 {:.3}, {} labels); least efficient: {}\n",
            first.0, first.1.f1, first.2, last.0
        ));
    }
    out
}

/// Load a benchmark table from a JSON file written by the `ds-bench`
/// harness.
pub fn load_table(path: &std::path::Path) -> Result<BenchmarkTable, String> {
    let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    serde_json::from_str(&json).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_metrics::aggregate::BenchmarkCell;

    fn sample_table() -> BenchmarkTable {
        let mut t = BenchmarkTable::new();
        for (method, f1, labels) in [
            ("CamAL", 0.8, 100u64),
            ("FCN", 0.7, 520_000),
            ("WeakSliding", 0.35, 100),
        ] {
            t.push(BenchmarkCell {
                dataset: "IDEAL".into(),
                appliance: "Dishwasher".into(),
                method: method.into(),
                detection: Measures {
                    f1: f1 + 0.1,
                    accuracy: 0.9,
                    ..Measures::default()
                },
                localization: Measures {
                    f1,
                    ..Measures::default()
                },
                labels_used: labels,
            });
        }
        t
    }

    #[test]
    fn dataset_grid_renders() {
        let t = sample_table();
        let out = render_dataset(&t, "IDEAL", "F1");
        assert!(out.contains("Benchmark: IDEAL"));
        assert!(out.contains("CamAL"));
        assert!(out.contains("0.800"));
        assert!(out.contains("520000"));
        let missing = render_dataset(&t, "REFIT", "F1");
        assert!(missing.contains("no benchmark results"));
    }

    #[test]
    fn label_comparison_ranks_by_f1() {
        let t = sample_table();
        let out = render_label_comparison(&t);
        let camal_pos = out.find("CamAL").unwrap();
        let fcn_pos = out.find("FCN").unwrap();
        let weak_pos = out.find("WeakSliding").unwrap();
        assert!(
            camal_pos < fcn_pos && fcn_pos < weak_pos,
            "ranking broken:\n{out}"
        );
        assert!(out.contains("best method: CamAL"));
        let empty = render_label_comparison(&BenchmarkTable::new());
        assert!(empty.contains("no benchmark results"));
    }

    #[test]
    fn load_table_round_trip() {
        let dir = std::env::temp_dir().join("ds_app_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.json");
        std::fs::write(&path, serde_json::to_string(&sample_table()).unwrap()).unwrap();
        let t = load_table(&path).unwrap();
        assert_eq!(t.cells.len(), 3);
        std::fs::remove_file(&path).ok();
        assert!(load_table(&dir.join("missing.json")).is_err());
    }
}
