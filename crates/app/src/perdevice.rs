//! The per-device view (Figure 5-A.2): ground-truth appliance consumption
//! and status next to the predicted localization, so the user can compare
//! their guess — and CamAL's — with reality.

use crate::playground::{CHART_HEIGHT, CHART_WIDTH};
use crate::plot::{line_chart, status_strip, tri_status, tri_status_strip};
use crate::state::{AppError, AppState};
use ds_datasets::ApplianceKind;
use ds_timeseries::missing::{impute, Imputation};

/// Render the per-device view for one appliance in the current window.
pub fn render(state: &mut AppState, kind: ApplianceKind) -> Result<String, AppError> {
    let mut out = String::new();
    out.push_str(&format!("── Per device: {} ──\n", kind.name()));
    match state.current_channel(kind)? {
        Some(channel) => {
            out.push_str("ground-truth appliance power:\n");
            out.push_str(&line_chart(&channel, CHART_WIDTH, CHART_HEIGHT / 2));
        }
        None => {
            out.push_str("this household does not own the appliance\n");
        }
    }
    let truth = state.current_truth(kind)?;
    out.push_str(&format!(
        "truth     {}\n",
        status_strip(&truth, CHART_WIDTH)
    ));
    // Predicted localization of this appliance. Inference runs on a
    // linearly imputed copy of the window; the raw values then mask the
    // gap timesteps back to `Unknown` so degraded decisions render as `▒`
    // and are excluded from the score below.
    let window = state.current_window()?;
    let clean = impute(&window, Imputation::Linear).into_values();
    let loc = state.frozen_localize(kind, &clean)?;
    let tri = tri_status(&loc.status, window.values());
    out.push_str(&format!(
        "predicted {}\n",
        tri_status_strip(&tri, CHART_WIDTH)
    ));
    let wire: Vec<u8> = tri.iter().map(|s| s.as_u8()).collect();
    let s = ds_metrics::localization::score_status_known(&wire, &truth);
    let m = s.measures;
    out.push_str(&format!(
        "window localization: acc {:.2}  bacc {:.2}  precision {:.2}  recall {:.2}  f1 {:.2}\n",
        m.accuracy, m.balanced_accuracy, m.precision, m.recall, m.f1
    ));
    if s.unknown > 0 {
        out.push_str(&format!(
            "  (scored on {:.0}% of timesteps; {} unknown due to missing data)\n",
            s.coverage() * 100.0,
            s.unknown
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AppConfig;
    use ds_datasets::DatasetPreset;
    use ds_timeseries::window::WindowLength;

    #[test]
    fn renders_truth_and_prediction() {
        let mut state = AppState::new(AppConfig::fast_test());
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        let view = render(&mut state, ApplianceKind::Kettle).unwrap();
        assert!(view.contains("Per device: Kettle"));
        assert!(view.contains("truth"));
        assert!(view.contains("predicted"));
        assert!(view.contains("window localization"));
        // Either the power chart or the non-possession note must appear.
        assert!(view.contains("ground-truth appliance power") || view.contains("does not own"));
    }

    #[test]
    fn requires_loaded_series() {
        let mut state = AppState::new(AppConfig::fast_test());
        assert!(render(&mut state, ApplianceKind::Shower).is_err());
    }
}
