//! The interactive command loop wiring the views together. Commands map
//! one-to-one onto the GUI's widgets (select boxes, Prev/Next buttons,
//! tabs), so the demo scenarios can be followed verbatim.

use crate::state::{AppError, AppState};
use crate::{benchmark_frame, perdevice, playground, probabilities, scenarios};
use ds_datasets::ApplianceKind;
use ds_metrics::aggregate::BenchmarkTable;
use ds_timeseries::window::WindowLength;
use std::io::{BufRead, Write};

/// The REPL over an app state and an optional preloaded benchmark table.
pub struct Repl {
    state: AppState,
    bench: Option<BenchmarkTable>,
    /// A running ds-serve HTTP server sharing this session's trained
    /// models (`serve start`), if one has been started.
    server: Option<ds_serve::ServerHandle>,
}

/// Outcome of executing one command.
pub enum Outcome {
    /// Text to print.
    Output(String),
    /// The user asked to exit.
    Quit,
}

impl Repl {
    /// Create a REPL.
    pub fn new(state: AppState, bench: Option<BenchmarkTable>) -> Repl {
        Repl {
            state,
            bench,
            server: None,
        }
    }

    /// The help text.
    pub fn help() -> &'static str {
        "DeviceScope commands:\n\
         \x20 datasets                 list available datasets\n\
         \x20 houses <dataset>         list browsable (test) houses\n\
         \x20 info <dataset>           dataset statistics\n\
         \x20 load <dataset> <house>   load a consumption series\n\
         \x20 window <6h|12h|1d>       set the window length\n\
         \x20 next | prev              page through the series\n\
         \x20 show                     render the playground frame\n\
         \x20 select <appliance>       toggle an appliance overlay\n\
         \x20 perdevice <appliance>    ground truth vs prediction\n\
         \x20 probs                    model detection probabilities\n\
         \x20 patterns [appliance]     example appliance signatures\n\
         \x20 insights                 per-appliance energy breakdown\n\
         \x20 precision [f32|int8]     show or switch the serving precision\n\
         \x20 backbone [resnet|inception|transapp]  show or switch the detector backbone\n\
         \x20 backbones                per-backbone accuracy vs serving latency\n\
         \x20 benchmark <dataset> [measure]   benchmark frame (B.1)\n\
         \x20 labels                   label-efficiency comparison (B.2)\n\
         \x20 scenario <1|2|3>         run a demonstration scenario\n\
         \x20 serve <start [addr]|status|stop>  HTTP serving over the session's plans\n\
         \x20 obs [level|reset]        live observability profile (DS_OBS)\n\
         \x20 profile                  hot spans, worker busy/idle, SLO verdicts\n\
         \x20 help                     this text\n\
         \x20 quit                     exit\n"
    }

    /// Execute one command line.
    pub fn execute(&mut self, line: &str) -> Outcome {
        match self.dispatch(line) {
            Ok(Some(text)) => Outcome::Output(text),
            Ok(None) => Outcome::Quit,
            Err(e) => Outcome::Output(format!("error: {e}\n")),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<Option<String>, AppError> {
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let arg1 = parts.next();
        let arg2 = parts.next();
        Ok(Some(match cmd {
            "" => String::new(),
            "help" => Self::help().to_string(),
            "quit" | "exit" => return Ok(None),
            "datasets" => format!("{}\n", self.state.dataset_names().join(", ")),
            "info" => {
                let name = arg1.ok_or_else(|| AppError::UnknownDataset("".into()))?;
                let preset = ds_datasets::DatasetPreset::parse(name)
                    .ok_or_else(|| AppError::UnknownDataset(name.to_string()))?;
                let stats = self.state.dataset_stats(preset);
                ds_datasets::stats::render(&stats)
            }
            "houses" => {
                let name = arg1.ok_or_else(|| AppError::UnknownDataset("".into()))?;
                let preset = ds_datasets::DatasetPreset::parse(name)
                    .ok_or_else(|| AppError::UnknownDataset(name.to_string()))?;
                let houses = self.state.browsable_houses(preset);
                format!(
                    "test houses of {}: {}\n",
                    preset.name(),
                    houses
                        .iter()
                        .map(|h| h.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            "load" => {
                let name = arg1.ok_or_else(|| AppError::UnknownDataset("".into()))?;
                let house: u32 = arg2
                    .and_then(|h| h.parse().ok())
                    .ok_or(AppError::UnknownHouse(u32::MAX))?;
                self.state.load(name, house)?;
                format!(
                    "loaded {name} house {house}\n{}",
                    playground::render(&mut self.state)?
                )
            }
            "window" => {
                let length = match arg1 {
                    Some("6h") => WindowLength::SixHours,
                    Some("12h") => WindowLength::TwelveHours,
                    Some("1d") | Some("24h") => WindowLength::OneDay,
                    other => {
                        return Ok(Some(format!(
                            "unknown window length {:?} (use 6h, 12h or 1d)\n",
                            other.unwrap_or("")
                        )))
                    }
                };
                self.state.set_window_length(length)?;
                playground::render(&mut self.state)?
            }
            "next" => {
                let moved = self.state.next()?;
                let view = playground::render(&mut self.state)?;
                if moved {
                    view
                } else {
                    format!("(already at the last window)\n{view}")
                }
            }
            "prev" => {
                let moved = self.state.prev()?;
                let view = playground::render(&mut self.state)?;
                if moved {
                    view
                } else {
                    format!("(already at the first window)\n{view}")
                }
            }
            "show" => playground::render(&mut self.state)?,
            "select" => {
                let name = arg1.ok_or_else(|| AppError::UnknownAppliance("".into()))?;
                let on = self.state.toggle_appliance(name)?;
                format!(
                    "{} {}\n{}",
                    name,
                    if on { "selected" } else { "deselected" },
                    playground::render(&mut self.state)?
                )
            }
            "perdevice" => {
                let name = arg1.ok_or_else(|| AppError::UnknownAppliance("".into()))?;
                let kind = ApplianceKind::parse(name)
                    .ok_or_else(|| AppError::UnknownAppliance(name.to_string()))?;
                perdevice::render(&mut self.state, kind)?
            }
            "probs" => probabilities::render(&mut self.state)?,
            "patterns" => match arg1 {
                Some(name) => match ApplianceKind::parse(name) {
                    Some(kind) => crate::patterns::render_one(kind, 42),
                    None => return Err(AppError::UnknownAppliance(name.to_string())),
                },
                None => crate::patterns::render_all(42),
            },
            "insights" => {
                if self.state.selected.is_empty() {
                    "select at least one appliance first (select <appliance>)\n".into()
                } else {
                    let (usages, total) = self.state.insights()?;
                    crate::insights::render(&usages, total)
                }
            }
            "precision" => match arg1 {
                None => format!("serving precision: {}\n", self.state.precision().label()),
                Some(spec) => match ds_camal::Precision::parse(spec) {
                    Some(p) => {
                        self.state.set_precision(p);
                        format!(
                            "serving precision set to {} (plans rebuild lazily per appliance)\n",
                            p.label()
                        )
                    }
                    None => format!("unknown precision {spec:?} (use f32 or int8)\n"),
                },
            },
            "backbone" => match arg1 {
                None => format!("detector backbone: {}\n", self.state.backbone().label()),
                Some(spec) => match ds_camal::Backbone::parse(spec) {
                    Some(b) => {
                        self.state.set_backbone(b);
                        format!(
                            "detector backbone set to {} (models train lazily per appliance)\n",
                            b.label()
                        )
                    }
                    None => {
                        format!("unknown backbone {spec:?} (use resnet, inception or transapp)\n")
                    }
                },
            },
            "backbones" => {
                if self.state.selected.is_empty() {
                    "select at least one appliance first (select <appliance>)\n".into()
                } else {
                    let kinds = self.state.selected.clone();
                    crate::backbones::render(&mut self.state, &kinds)?
                }
            }
            "benchmark" => match (&self.bench, arg1) {
                (Some(bench), Some(dataset)) => {
                    benchmark_frame::render_dataset(bench, dataset, arg2.unwrap_or("F1"))
                }
                (Some(_), None) => "usage: benchmark <dataset> [measure]\n".into(),
                (None, _) => "no benchmark table loaded (run the ds-bench harness first, \
                              then start with --bench <table.json>)\n"
                    .into(),
            },
            "labels" => match &self.bench {
                Some(bench) => benchmark_frame::render_label_comparison(bench),
                None => "no benchmark table loaded\n".into(),
            },
            "scenario" => match arg1 {
                Some("1") => scenarios::scenario_1(&mut self.state)?,
                Some("2") => {
                    let kind = arg2
                        .and_then(ApplianceKind::parse)
                        .unwrap_or(ApplianceKind::Kettle);
                    scenarios::scenario_2(&mut self.state, kind)?
                }
                Some("3") => match &self.bench {
                    Some(bench) => scenarios::scenario_3(bench, arg2.unwrap_or("UKDALE"), "F1"),
                    None => "scenario 3 needs a benchmark table (--bench <table.json>)\n".into(),
                },
                _ => "usage: scenario <1|2|3> [appliance|dataset]\n".into(),
            },
            "serve" => match arg1 {
                Some("start") => match &self.server {
                    Some(handle) => format!(
                        "server already running at http://{} (serve stop first)\n",
                        handle.addr()
                    ),
                    None => {
                        let registry = std::sync::Arc::new(ds_serve::ModelRegistry::new());
                        let plans = self.state.register_serving_models(&registry)?;
                        if plans.is_empty() {
                            "select at least one appliance first (select <appliance>), \
                             then serve start\n"
                                .into()
                        } else {
                            let config = ds_serve::ServeConfig {
                                addr: arg2.unwrap_or("127.0.0.1:8732").to_string(),
                                ..ds_serve::ServeConfig::default()
                            };
                            let workers = config.workers;
                            match ds_serve::Server::start(config, registry) {
                                Ok(handle) => {
                                    let mut out = format!(
                                        "serving {} model(s) at http://{} \
                                         ({} worker(s), micro-batch up to {} windows)\n",
                                        plans.len(),
                                        handle.addr(),
                                        workers.max(1),
                                        handle.batch_windows(),
                                    );
                                    for (preset, appliance, window, backbone) in &plans {
                                        out.push_str(&format!(
                                            "  {preset}/{appliance} [{}] window {window}\n",
                                            backbone.label()
                                        ));
                                    }
                                    out.push_str(
                                        "endpoints: POST /api/v1/{detect,localize,\
                                         status-series,push}, GET /api/v1/stats\n",
                                    );
                                    self.server = Some(handle);
                                    out
                                }
                                Err(e) => format!("error: could not start server: {e}\n"),
                            }
                        }
                    }
                },
                Some("status") => match &self.server {
                    Some(handle) => {
                        use std::sync::atomic::Ordering::Relaxed;
                        let stats = handle.stats();
                        format!(
                            "serving at http://{}\n\
                             \x20 requests {}  rejected {}  client errors {}\n\
                             \x20 batches {} (full {}, deadline {})  \
                             mean fill {:.2}/{}\n\
                             \x20 steady-state allocs in the batch kernel: {}\n",
                            handle.addr(),
                            stats.requests.load(Relaxed),
                            stats.rejected.load(Relaxed),
                            stats.client_errors.load(Relaxed),
                            stats.batches.load(Relaxed),
                            stats.full_batches.load(Relaxed),
                            stats.deadline_batches.load(Relaxed),
                            stats.mean_batch_fill(handle.batch_windows()),
                            handle.batch_windows(),
                            stats.steady_allocs.load(Relaxed),
                        )
                    }
                    None => "no server running (serve start [addr])\n".into(),
                },
                Some("stop") => match self.server.take() {
                    Some(handle) => {
                        let addr = handle.addr();
                        handle.shutdown();
                        format!("server at http://{addr} stopped\n")
                    }
                    None => "no server running\n".into(),
                },
                _ => "usage: serve <start [addr]|status|stop>\n".into(),
            },
            "obs" => match arg1 {
                None => {
                    let mut out = ds_obs::render_summary();
                    // Frozen serving latency vs the interactive render
                    // budget: a window must draw in under 50 ms.
                    match ds_obs::global().histogram_summary("app.frozen.window_latency_s") {
                        Some(s) if s.count > 0 => out.push_str(&format!(
                            "frozen window latency: p50 {:.2} ms  p99 {:.2} ms over {} windows (budget 50 ms)\n",
                            s.p50 * 1e3,
                            s.p99 * 1e3,
                            s.count,
                        )),
                        _ => out.push_str(
                            "frozen window latency: no samples yet (obs summary, then probs/perdevice/play)\n",
                        ),
                    }
                    out
                }
                Some("off") => {
                    ds_obs::set_level(ds_obs::Level::Off);
                    "observability off\n".into()
                }
                Some("summary") => {
                    ds_obs::set_level(ds_obs::Level::Summary);
                    "observability level set to summary\n".into()
                }
                Some("trace") => {
                    ds_obs::set_level(ds_obs::Level::Trace);
                    "observability level set to trace (events echo to stderr)\n".into()
                }
                Some("reset") => {
                    ds_obs::reset();
                    "observability data cleared\n".into()
                }
                Some(other) => {
                    format!("unknown obs argument {other:?} (use off|summary|trace|reset)\n")
                }
            },
            "profile" => ds_obs::render_profile(),
            other => format!("unknown command {other:?} — type 'help'\n"),
        }))
    }

    /// Run the interactive loop over the given reader/writer.
    pub fn run(&mut self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        writeln!(output, "DeviceScope — type 'help' for commands")?;
        write!(output, "> ")?;
        output.flush()?;
        for line in input.lines() {
            let line = line?;
            match self.execute(&line) {
                Outcome::Output(text) => {
                    write!(output, "{text}")?;
                }
                Outcome::Quit => break,
            }
            write!(output, "> ")?;
            output.flush()?;
        }
        writeln!(output)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AppConfig;

    fn repl() -> Repl {
        Repl::new(AppState::new(AppConfig::fast_test()), None)
    }

    fn run(repl: &mut Repl, cmd: &str) -> String {
        match repl.execute(cmd) {
            Outcome::Output(s) => s,
            Outcome::Quit => "<quit>".into(),
        }
    }

    #[test]
    fn help_and_unknown() {
        let mut r = repl();
        assert!(run(&mut r, "help").contains("DeviceScope commands"));
        assert!(run(&mut r, "frobnicate").contains("unknown command"));
        assert_eq!(run(&mut r, ""), "");
        assert_eq!(run(&mut r, "quit"), "<quit>");
    }

    #[test]
    fn obs_command_renders_profile_and_switches_level() {
        let _guard = crate::obs_test_lock();
        let mut r = repl();
        assert!(run(&mut r, "help").contains("obs [level|reset]"));
        // Default (tests run with observability off): the summary renders
        // with a hint rather than erroring.
        assert!(run(&mut r, "obs").contains("ds-obs summary"));
        // No frozen-path traffic yet: the latency line says so.
        assert!(run(&mut r, "obs").contains("frozen window latency: no samples yet"));
        assert!(run(&mut r, "obs summary").contains("level set to summary"));
        // With the level on, REPL-driven model activity shows up in the
        // profile table.
        let _ = run(&mut r, "obs reset");
        {
            let _span = ds_obs::span!("repl_probe");
        }
        assert!(run(&mut r, "obs").contains("repl_probe"));
        // Frozen serving samples surface as a p50/p99 line against the
        // 50 ms interactive budget.
        ds_obs::observe(
            "app.frozen.window_latency_s",
            0.004,
            ds_obs::Buckets::DurationSecs,
        );
        let view = run(&mut r, "obs");
        assert!(view.contains("frozen window latency: p50"));
        assert!(view.contains("budget 50 ms"));
        assert!(run(&mut r, "obs bogus").contains("unknown obs argument"));
        assert!(run(&mut r, "obs reset").contains("cleared"));
        assert!(run(&mut r, "obs off").contains("observability off"));
        ds_obs::reset();
    }

    #[test]
    fn profile_command_reports_hot_spans_and_slo_verdicts() {
        let _guard = crate::obs_test_lock();
        // `repl()` builds an AppState, which declares the frozen-latency
        // budget.
        let mut r = repl();
        assert!(run(&mut r, "help").contains("profile"));
        let _ = run(&mut r, "obs summary");
        let _ = run(&mut r, "obs reset");
        {
            let _span = ds_obs::span!("profile_probe");
        }
        // Under the 50 ms budget: the declared SLO passes.
        ds_obs::observe(
            "app.frozen.window_latency_s",
            0.004,
            ds_obs::Buckets::DurationSecs,
        );
        let view = run(&mut r, "profile");
        assert!(view.contains("hot spans"), "profile view:\n{view}");
        assert!(view.contains("profile_probe"));
        assert!(view.contains("slo budgets"));
        assert!(view.contains("[PASS] frozen_window_latency"));
        // Push p99 over 50 ms: the verdict flips and the burn counter
        // records the violating sample.
        ds_obs::observe(
            "app.frozen.window_latency_s",
            0.120,
            ds_obs::Buckets::DurationSecs,
        );
        let view = run(&mut r, "profile");
        assert!(view.contains("[FAIL] frozen_window_latency"), "{view}");
        assert!(
            ds_obs::global().counter_get("slo.frozen_window_latency.burn") >= 1,
            "burn counter should tick on violation"
        );
        let _ = run(&mut r, "obs reset");
        let _ = run(&mut r, "obs off");
    }

    #[test]
    fn full_session_flow() {
        let mut r = repl();
        assert!(run(&mut r, "datasets").contains("UKDALE"));
        let houses = run(&mut r, "houses ukdale");
        assert!(houses.contains("test houses of UKDALE"));
        let first_house: u32 = houses
            .split(':')
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(run(&mut r, &format!("load UKDALE {first_house}")).contains("Playground"));
        assert!(run(&mut r, "window 6h").contains("6 hours"));
        assert!(run(&mut r, "next").contains("window 2/"));
        assert!(run(&mut r, "prev").contains("window 1/"));
        assert!(run(&mut r, "prev").contains("already at the first"));
        assert!(run(&mut r, "select kettle").contains("kettle selected"));
        assert!(run(&mut r, "probs").contains("ensemble"));
        assert!(run(&mut r, "perdevice kettle").contains("Per device"));
    }

    /// `serve start` exports the session's trained plans over HTTP; the
    /// served decisions come from the same FrozenCamal plans the views
    /// use, so a REPL session doubles as a serving endpoint.
    #[test]
    fn serve_command_starts_a_queryable_server() {
        let mut r = repl();
        assert!(run(&mut r, "serve status").contains("no server running"));
        assert!(run(&mut r, "serve stop").contains("no server running"));
        assert!(run(&mut r, "serve").contains("usage: serve"));
        let houses = run(&mut r, "houses ukdale");
        let first_house: u32 = houses
            .split(':')
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        let _ = run(&mut r, &format!("load UKDALE {first_house}"));
        assert!(run(&mut r, "serve start 127.0.0.1:0").contains("select at least one appliance"));
        let _ = run(&mut r, "select kettle");
        let started = run(&mut r, "serve start 127.0.0.1:0");
        assert!(started.contains("serving 1 model(s)"), "{started}");
        let addr = started
            .split("http://")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .to_string();
        let window: usize = started
            .lines()
            .find(|l| l.contains("/kettle [resnet] window"))
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(run(&mut r, "serve start").contains("already running"));

        let mut client = ds_serve::Client::connect(&addr).unwrap();
        let values = vec!["0.5"; window].join(",");
        let body =
            format!("{{\"preset\":\"UKDALE\",\"appliance\":\"kettle\",\"values\":[{values}]}}");
        let (status, reply) = client.post("/api/v1/detect", &body).unwrap();
        assert_eq!(status, 200, "{reply}");
        assert!(reply.contains("\"probability\""), "{reply}");

        let status_view = run(&mut r, "serve status");
        assert!(status_view.contains("requests 1"), "{status_view}");
        assert!(run(&mut r, "serve stop").contains("stopped"));
        assert!(run(&mut r, "serve status").contains("no server running"));
    }

    #[test]
    fn precision_command_switches_serving_plans() {
        let mut r = repl();
        assert!(run(&mut r, "help").contains("precision [f32|int8]"));
        assert!(run(&mut r, "precision").contains("serving precision: f32"));
        assert!(run(&mut r, "precision fp16").contains("unknown precision"));
        assert!(run(&mut r, "precision int8").contains("set to int8"));
        assert!(run(&mut r, "precision").contains("int8"));
        // The int8 plan serves the playground end to end.
        let houses = run(&mut r, "houses ukdale");
        let first: u32 = houses
            .split(':')
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        run(&mut r, &format!("load UKDALE {first}"));
        run(&mut r, "window 6h");
        assert!(run(&mut r, "select kettle").contains("kettle selected"));
        assert!(run(&mut r, "show").contains("Playground"));
        assert!(run(&mut r, "precision f32").contains("set to f32"));
        assert!(run(&mut r, "show").contains("Playground"));
    }

    #[test]
    fn backbone_command_switches_the_detector_architecture() {
        let mut r = repl();
        assert!(run(&mut r, "help").contains("backbone [resnet|inception|transapp]"));
        assert!(run(&mut r, "help").contains("backbones"));
        assert!(run(&mut r, "backbone").contains("detector backbone: resnet"));
        assert!(run(&mut r, "backbone vgg").contains("unknown backbone"));
        assert!(run(&mut r, "backbone inception").contains("set to inception"));
        assert!(run(&mut r, "backbone").contains("inception"));
        assert!(run(&mut r, "backbone transapp").contains("set to transapp"));
        // The comparison view needs a selection and a loaded series.
        assert!(run(&mut r, "backbones").contains("select at least one appliance"));
    }

    #[test]
    fn patterns_and_insights_commands() {
        let mut r = repl();
        // Patterns work without a loaded series.
        let all = run(&mut r, "patterns");
        assert!(all.contains("Kettle") && all.contains("Shower"));
        let one = run(&mut r, "patterns dishwasher");
        assert!(one.contains("Dishwasher — typical pattern"));
        assert!(run(&mut r, "patterns toaster").contains("error"));
        // Insights need a selection and a loaded series.
        assert!(run(&mut r, "insights").contains("select at least one"));
        let houses = run(&mut r, "houses ukdale");
        let first: u32 = houses
            .split(':')
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        run(&mut r, &format!("load UKDALE {first}"));
        run(&mut r, "window 6h");
        run(&mut r, "select kettle");
        let insights = run(&mut r, "insights");
        assert!(insights.contains("Consumption insights"), "{insights}");
        assert!(insights.contains("Kettle"));
        assert!(insights.contains("kWh"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut r = repl();
        assert!(run(&mut r, "load MARS 1").contains("error"));
        assert!(run(&mut r, "next").contains("error"));
        assert!(run(&mut r, "select fridge").contains("error"));
        assert!(run(&mut r, "window 3h").contains("unknown window length"));
        assert!(run(&mut r, "benchmark UKDALE").contains("no benchmark table"));
        assert!(run(&mut r, "labels").contains("no benchmark table"));
        assert!(run(&mut r, "scenario 9").contains("usage"));
    }

    #[test]
    fn run_loop_reads_until_quit() {
        let mut r = repl();
        let input = b"datasets\nquit\n" as &[u8];
        let mut output = Vec::new();
        r.run(input, &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("DeviceScope"));
        assert!(text.contains("UKDALE"));
    }
}
