//! A small bounded map with insert-order (FIFO) eviction, backing the
//! app's prediction caches.
//!
//! The app recomputes nothing the user has already seen: status-series
//! predictions (insights view) and per-window localizations (playground
//! overlay) are cached per `(dataset, house, appliance, window length[,
//! window index])`, so Prev/Next navigation over visited windows is O(1)
//! instead of re-running ensemble inference. Every cached artifact is a
//! pure function of its key — datasets are generated deterministically and
//! models are trained once per key — so entries never go stale; the bound
//! exists only to cap memory on long browsing sessions.

use std::collections::{BTreeMap, VecDeque};

/// A bounded key→value cache that evicts the oldest-inserted entry when
/// full. Lookups never refresh an entry's age (FIFO, not LRU): the access
/// pattern is window navigation, where the cheapest predictable policy
/// beats recency tracking.
#[derive(Debug)]
pub struct BoundedCache<K: Ord + Clone, V> {
    map: BTreeMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
    counters: Option<CacheCounters>,
}

impl<K: Ord + Clone, V> BoundedCache<K, V> {
    /// An empty cache holding at most `capacity` entries (`capacity` is
    /// clamped to ≥ 1), with no observability counters attached.
    pub fn new(capacity: usize) -> BoundedCache<K, V> {
        BoundedCache {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            counters: None,
        }
    }

    /// Like [`BoundedCache::new`], with ds-obs counters attached:
    /// evictions tick `counters.evictions` automatically, and
    /// [`BoundedCache::get_or_try_insert_with`] ticks hits/misses.
    pub fn with_counters(capacity: usize, counters: CacheCounters) -> BoundedCache<K, V> {
        BoundedCache {
            counters: Some(counters),
            ..BoundedCache::new(capacity)
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The eviction bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key` without affecting eviction order.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// Mutable lookup without affecting eviction order — used for values
    /// that are updated in place, like frozen inference plans whose
    /// arenas are written by every prediction.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.map.get_mut(key)
    }

    /// Insert (or replace) `key`, evicting the oldest entry if the cache
    /// is full. Replacing an existing key keeps its original age. Each
    /// eviction ticks the cache's `evictions` counter (if attached), so
    /// `DS_OBS=summary` exposes when a bound is too tight for the
    /// navigation pattern.
    pub fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            if self.order.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                    if let Some(counters) = self.counters {
                        ds_obs::counter_add(counters.evictions, 1);
                    }
                }
            }
        }
    }

    /// Drop every entry (the bound is unchanged) — used when a global
    /// setting the cached values depend on changes, e.g. the serving
    /// precision invalidating prediction overlays.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Cached value for `key`, computing and inserting it on a miss.
    /// `compute` may fail; errors pass through without touching the cache.
    /// Hits and misses tick the cache's ds-obs counters (if attached) so
    /// `DS_OBS=summary` shows navigation cache efficiency.
    pub fn get_or_try_insert_with<E>(
        &mut self,
        key: K,
        compute: impl FnOnce(&mut Self) -> Result<V, E>,
    ) -> Result<&V, E> {
        if self.map.contains_key(&key) {
            if let Some(counters) = self.counters {
                ds_obs::counter_add(counters.hits, 1);
            }
        } else {
            if let Some(counters) = self.counters {
                ds_obs::counter_add(counters.misses, 1);
            }
            let value = compute(self)?;
            self.insert(key.clone(), value);
        }
        Ok(self.map.get(&key).expect("present or just inserted"))
    }
}

/// The counter names of one cache, declared once as `'static` strings so
/// the hot lookup path never allocates a counter name.
#[derive(Debug, Clone, Copy)]
pub struct CacheCounters {
    /// Counter ticked on a cache hit, e.g. `"cache.status_series.hits"`.
    pub hits: &'static str,
    /// Counter ticked on a cache miss.
    pub misses: &'static str,
    /// Counter ticked when the bound forces out the oldest entry, e.g.
    /// `"cache.status_series.evictions"`.
    pub evictions: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_up_to_capacity() {
        let mut c = BoundedCache::new(3);
        for i in 0..3 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(&0), Some(&0));
        assert_eq!(c.get(&2), Some(&20));
    }

    #[test]
    fn evicts_oldest_first() {
        let mut c = BoundedCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn replacing_a_key_does_not_grow_or_reage() {
        let mut c = BoundedCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // replace, "a" stays oldest
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        c.insert("c", 3); // evicts "a"
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c = BoundedCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2), Some(&2));
    }

    #[test]
    fn clear_empties_but_keeps_the_bound() {
        let mut c = BoundedCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 2);
        c.insert("c", 3);
        c.insert("d", 4);
        c.insert("e", 5);
        assert_eq!(c.len(), 2);
    }

    const TEST_COUNTERS: CacheCounters = CacheCounters {
        hits: "cache.test.hits",
        misses: "cache.test.misses",
        evictions: "cache.test.evictions",
    };

    #[test]
    fn get_or_try_insert_computes_once() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::with_counters(4, TEST_COUNTERS);
        let mut calls = 0;
        for _ in 0..3 {
            let v = c
                .get_or_try_insert_with(7, |_| {
                    calls += 1;
                    Ok::<u32, ()>(42)
                })
                .unwrap();
            assert_eq!(*v, 42);
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn get_or_try_insert_works_without_clone_values() {
        // The value type here implements neither Clone nor Copy; the
        // cache must still serve references to it.
        struct Opaque(#[allow(dead_code)] u32);
        let mut c: BoundedCache<u32, Opaque> = BoundedCache::new(4);
        let v = c
            .get_or_try_insert_with(1, |_| Ok::<_, ()>(Opaque(9)))
            .unwrap();
        assert_eq!(v.0, 9);
    }

    #[test]
    fn get_or_try_insert_propagates_errors() {
        let mut c: BoundedCache<u32, u32> = BoundedCache::new(4);
        let err = c.get_or_try_insert_with(1, |_| Err::<u32, &str>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        assert!(c.is_empty());
    }

    /// Eviction must tick the cache's `evictions` counter — the
    /// observable difference between a comfortably sized bound and one
    /// that is thrashing.
    #[test]
    fn eviction_ticks_the_evictions_counter() {
        const COUNTERS: CacheCounters = CacheCounters {
            hits: "cache.evict_test.hits",
            misses: "cache.evict_test.misses",
            evictions: "cache.evict_test.evictions",
        };
        // Counters only record when ds-obs is enabled; take the obs lock
        // shared by level-changing tests in this crate.
        let _guard = crate::obs_test_lock();
        ds_obs::set_level(ds_obs::Level::Summary);
        let before = ds_obs::global().counter_get(COUNTERS.evictions);
        let mut c: BoundedCache<u32, u32> = BoundedCache::with_counters(2, COUNTERS);
        c.insert(1, 1);
        c.insert(2, 2);
        assert_eq!(ds_obs::global().counter_get(COUNTERS.evictions), before);
        c.insert(3, 3); // bound is 2: evicts key 1
        assert_eq!(ds_obs::global().counter_get(COUNTERS.evictions), before + 1);
        assert_eq!(c.get(&1), None);
        // Replacement is not an eviction.
        c.insert(3, 30);
        assert_eq!(ds_obs::global().counter_get(COUNTERS.evictions), before + 1);
        ds_obs::set_level(ds_obs::Level::Off);
    }
}
