//! Consumption insights — the paper's closing motivation: *"DeviceScope
//! enables electricity suppliers to easily identify which appliances the
//! customer owns and their typical usage […] It also helps customers save
//! significantly by identifying over-consuming devices."*
//!
//! From a predicted (or ground-truth) status series and the appliance's
//! typical draw, this view estimates per-appliance usage time, energy and
//! share of the household total, and ranks the heaviest consumers.

use crate::plot::table;
use ds_datasets::ApplianceKind;
use ds_timeseries::{StatusSeries, TimeSeries};
use serde::{Deserialize, Serialize};

/// Estimated usage of one appliance over an analysis span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplianceUsage {
    /// The appliance.
    pub appliance: String,
    /// Number of distinct activations (ON segments).
    pub activations: usize,
    /// Total ON time in minutes.
    pub on_minutes: f64,
    /// Estimated energy in kWh (ON time × typical draw, or the exact
    /// integral when a submetered channel is supplied).
    pub energy_kwh: f64,
    /// Share of the household's aggregate energy, in `[0, 1]`.
    pub share_of_total: f64,
}

/// Estimate usage from a predicted status series.
///
/// When `channel` (the submetered power) is available the energy is exact;
/// otherwise it is `on-time × typical power` — what a deployed system can
/// do from localization alone.
pub fn appliance_usage(
    kind: ApplianceKind,
    status: &StatusSeries,
    aggregate: &TimeSeries,
    channel: Option<&TimeSeries>,
) -> ApplianceUsage {
    let interval_h = status.interval_secs() as f64 / 3600.0;
    let on_minutes = status.on_count() as f64 * status.interval_secs() as f64 / 60.0;
    let energy_kwh = match channel {
        Some(ch) => ch.energy_wh() / 1000.0,
        None => {
            let on_hours = status.on_count() as f64 * interval_h;
            // Mean draw while ON ≈ 60% of peak for cycling appliances.
            on_hours * kind.typical_peak_w() as f64 * 0.6 / 1000.0
        }
    };
    let total_kwh = (aggregate.energy_wh() / 1000.0).max(1e-9);
    ApplianceUsage {
        appliance: kind.name().to_string(),
        activations: status.on_segments().len(),
        on_minutes,
        energy_kwh,
        share_of_total: (energy_kwh / total_kwh).clamp(0.0, 1.0),
    }
}

/// Rank a set of usage estimates by energy, descending.
pub fn rank_by_energy(mut usages: Vec<ApplianceUsage>) -> Vec<ApplianceUsage> {
    usages.sort_by(|a, b| b.energy_kwh.partial_cmp(&a.energy_kwh).expect("finite"));
    usages
}

/// Render the insights view.
pub fn render(usages: &[ApplianceUsage], total_kwh: f64) -> String {
    let mut out = format!("── Consumption insights ── household total: {total_kwh:.1} kWh ──\n");
    if usages.is_empty() {
        out.push_str("no appliances analyzed yet — select some in the playground\n");
        return out;
    }
    let ranked = rank_by_energy(usages.to_vec());
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .map(|u| {
            vec![
                u.appliance.clone(),
                u.activations.to_string(),
                format!("{:.0}", u.on_minutes),
                format!("{:.2}", u.energy_kwh),
                format!("{:.0}%", u.share_of_total * 100.0),
            ]
        })
        .collect();
    out.push_str(&table(
        &["Appliance", "Uses", "On (min)", "Energy (kWh)", "Share"],
        &rows,
    ));
    if let Some(top) = ranked.first() {
        if top.energy_kwh > 0.0 {
            out.push_str(&format!(
                "\nheaviest consumer: {} ({:.2} kWh — {:.0}% of the household total)\n",
                top.appliance,
                top.energy_kwh,
                top.share_of_total * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(states: Vec<u8>) -> StatusSeries {
        StatusSeries::from_states(0, 60, states)
    }

    #[test]
    fn usage_from_status_only() {
        // 30 ON minutes out of 120, kettle.
        let mut states = vec![0u8; 120];
        states[10..40].fill(1);
        let agg = TimeSeries::from_values(0, 60, vec![1000.0; 120]);
        let u = appliance_usage(ApplianceKind::Kettle, &status(states), &agg, None);
        assert_eq!(u.activations, 1);
        assert!((u.on_minutes - 30.0).abs() < 1e-9);
        // 0.5h × 2800W × 0.6 = 0.84 kWh.
        assert!((u.energy_kwh - 0.84).abs() < 1e-6, "{}", u.energy_kwh);
        // Aggregate total = 2 kWh; share = 0.42.
        assert!((u.share_of_total - 0.42).abs() < 1e-6);
    }

    #[test]
    fn usage_with_channel_is_exact() {
        let mut states = vec![0u8; 60];
        states[0..30].fill(1);
        let mut channel = TimeSeries::zeros(0, 60, 60);
        channel.values_mut()[0..30].fill(2000.0);
        let agg = TimeSeries::from_values(0, 60, vec![2500.0; 60]);
        let u = appliance_usage(
            ApplianceKind::Dishwasher,
            &status(states),
            &agg,
            Some(&channel),
        );
        assert!((u.energy_kwh - 1.0).abs() < 1e-6); // 2000W × 0.5h
    }

    #[test]
    fn ranking_orders_by_energy() {
        let mk = |name: &str, e: f64| ApplianceUsage {
            appliance: name.into(),
            activations: 1,
            on_minutes: 1.0,
            energy_kwh: e,
            share_of_total: 0.1,
        };
        let ranked = rank_by_energy(vec![mk("A", 0.5), mk("B", 2.0), mk("C", 1.0)]);
        let names: Vec<&str> = ranked.iter().map(|u| u.appliance.as_str()).collect();
        assert_eq!(names, vec!["B", "C", "A"]);
    }

    #[test]
    fn render_reports_heaviest() {
        let usages = vec![
            ApplianceUsage {
                appliance: "Shower".into(),
                activations: 2,
                on_minutes: 20.0,
                energy_kwh: 2.8,
                share_of_total: 0.4,
            },
            ApplianceUsage {
                appliance: "Kettle".into(),
                activations: 5,
                on_minutes: 15.0,
                energy_kwh: 0.7,
                share_of_total: 0.1,
            },
        ];
        let out = render(&usages, 7.0);
        assert!(out.contains("heaviest consumer: Shower"));
        assert!(out.contains("40%"));
        let empty = render(&[], 7.0);
        assert!(empty.contains("no appliances analyzed"));
    }

    #[test]
    fn zero_total_does_not_divide_by_zero() {
        let agg = TimeSeries::zeros(0, 60, 10);
        let u = appliance_usage(ApplianceKind::Kettle, &status(vec![1; 10]), &agg, None);
        assert!(u.share_of_total.is_finite());
        assert!(u.share_of_total <= 1.0);
    }
}
