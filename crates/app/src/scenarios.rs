//! The three demonstration scenarios of §IV, as scripted walkthroughs that
//! drive the real views (nothing is mocked: scenario text interleaves with
//! live renders of the frames).

use crate::state::{AppError, AppState};
use crate::{benchmark_frame, perdevice, playground, probabilities};
use ds_datasets::{ApplianceKind, DatasetPreset};
use ds_metrics::aggregate::BenchmarkTable;

/// Scenario 1 — *A blind guess*: load a series and show only the aggregate
/// window, challenging the user to guess which appliances ran.
pub fn scenario_1(state: &mut AppState) -> Result<String, AppError> {
    let mut out = String::from(
        "═══ Scenario 1: A blind guess ═══\n\
         Look at the aggregate consumption below. Which appliances do you\n\
         think were used, and when? (No help this time — that is the point:\n\
         NILM without supervision is hard.)\n\n",
    );
    ensure_loaded(state)?;
    state.selected.clear();
    out.push_str(&playground::render(state)?);
    out.push_str("\nWhen you have made your guess, move on to scenario 2.\n");
    Ok(out)
}

/// Scenario 2 — *A second guess with appliance patterns*: the same window
/// with CamAL's predicted localization and the per-device ground truth.
pub fn scenario_2(state: &mut AppState, kind: ApplianceKind) -> Result<String, AppError> {
    let mut out = String::from(
        "═══ Scenario 2: A second guess with appliance patterns ═══\n\
         Now the expander shows an example pattern, CamAL's estimated\n\
         localization, and finally the ground truth from the submeter.\n\n",
    );
    ensure_loaded(state)?;
    out.push_str(&crate::patterns::render_one(kind, 42));
    out.push('\n');
    if !state.selected.contains(&kind) {
        state.selected.push(kind);
    }
    out.push_str(&playground::render(state)?);
    out.push('\n');
    out.push_str(&probabilities::render(state)?);
    out.push('\n');
    out.push_str(&perdevice::render(state, kind)?);
    Ok(out)
}

/// Scenario 3 — *Compare CamAL performance*: the benchmark frame over a
/// results table produced by the `ds-bench` harness.
pub fn scenario_3(bench: &BenchmarkTable, dataset: &str, measure: &str) -> String {
    let mut out = String::from(
        "═══ Scenario 3: Compare CamAL performance ═══\n\
         The benchmark page compares the 7 methods (5 seq2seq NILM networks,\n\
         the weakly supervised baseline, and CamAL) on detection and\n\
         localization measures — and on how many labels each needs.\n\n",
    );
    out.push_str(&benchmark_frame::render_dataset(bench, dataset, measure));
    out.push('\n');
    out.push_str(&benchmark_frame::render_label_comparison(bench));
    out
}

fn ensure_loaded(state: &mut AppState) -> Result<(), AppError> {
    if state.current_window().is_ok() {
        return Ok(());
    }
    let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
    let house = *houses.first().expect("presets always have test houses");
    state.load("UKDALE", house)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::AppConfig;
    use ds_metrics::aggregate::BenchmarkCell;
    use ds_metrics::Measures;
    use ds_timeseries::window::WindowLength;

    #[test]
    fn scenario_1_hides_predictions() {
        let mut state = AppState::new(AppConfig::fast_test());
        let out = scenario_1(&mut state).unwrap();
        assert!(out.contains("Scenario 1"));
        assert!(out.contains('█'));
        assert!(!out.contains("predicted appliance status"));
    }

    #[test]
    fn scenario_2_shows_prediction_and_truth() {
        let mut state = AppState::new(AppConfig::fast_test());
        state.set_window_length(WindowLength::SixHours).unwrap();
        let out = scenario_2(&mut state, ApplianceKind::Kettle).unwrap();
        assert!(out.contains("Scenario 2"));
        assert!(out.contains("Kettle — typical pattern"));
        assert!(out.contains("predicted appliance status"));
        assert!(out.contains("Per device: Kettle"));
        assert!(out.contains("Model detection probabilities"));
    }

    #[test]
    fn scenario_3_renders_benchmark() {
        let mut t = BenchmarkTable::new();
        t.push(BenchmarkCell {
            dataset: "IDEAL".into(),
            appliance: "Dishwasher".into(),
            method: "CamAL".into(),
            detection: Measures::default(),
            localization: Measures {
                f1: 0.7,
                ..Measures::default()
            },
            labels_used: 42,
        });
        let out = scenario_3(&t, "IDEAL", "F1");
        assert!(out.contains("Scenario 3"));
        assert!(out.contains("Benchmark: IDEAL"));
        assert!(out.contains("CamAL"));
    }
}
