//! The appliance-pattern expander of Scenario 2: *"we will ask the user to
//! open the expander below the time series, depicting examples of appliance
//! patterns."* Renders a typical signature of each appliance (drawn from
//! the same generative models the simulator uses) so the user learns what
//! to look for in the aggregate.

use crate::plot::line_chart;
use ds_datasets::ApplianceKind;
use ds_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A representative activation profile of the appliance at 1-minute
/// resolution, deterministic in `seed`.
pub fn example_signature(kind: ApplianceKind, seed: u64) -> TimeSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = kind.sample_activation(&mut rng, 60);
    // Pad with a little context on each side so the shape reads clearly.
    let pad = (profile.len() / 4).clamp(2, 30);
    let mut values = vec![0.0f32; pad];
    values.extend_from_slice(&profile);
    values.extend(std::iter::repeat_n(0.0f32, pad));
    TimeSeries::from_values(0, 60, values)
}

/// Render the expander for one appliance.
pub fn render_one(kind: ApplianceKind, seed: u64) -> String {
    let sig = example_signature(kind, seed);
    let duration_min = sig.len() as u32 - 2 * ((sig.len() / 4).clamp(2, 30) as u32);
    let mut out = format!(
        "▼ {} — typical pattern (~{} min, peak ~{:.1} kW)\n",
        kind.name(),
        duration_min,
        kind.typical_peak_w() / 1000.0
    );
    out.push_str(&line_chart(&sig, 64, 7));
    out
}

/// Render the full expander (all five appliances).
pub fn render_all(seed: u64) -> String {
    let mut out = String::from("── Appliance pattern examples ──\n\n");
    for (i, kind) in ApplianceKind::ALL.into_iter().enumerate() {
        out.push_str(&render_one(kind, seed.wrapping_add(i as u64)));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signatures_are_padded_and_deterministic() {
        let a = example_signature(ApplianceKind::Kettle, 7);
        let b = example_signature(ApplianceKind::Kettle, 7);
        assert_eq!(a, b);
        // Zero context on both ends.
        assert_eq!(a.values()[0], 0.0);
        assert_eq!(*a.values().last().unwrap(), 0.0);
        // The peak sits inside.
        let peak = a.values().iter().cloned().fold(0.0f32, f32::max);
        assert!(peak > 2000.0);
        let c = example_signature(ApplianceKind::Kettle, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn render_mentions_power_and_duration() {
        let out = render_one(ApplianceKind::Shower, 1);
        assert!(out.contains("Shower"));
        assert!(out.contains("kW"));
        assert!(out.contains('█'));
    }

    #[test]
    fn render_all_covers_every_appliance() {
        let out = render_all(3);
        for kind in ApplianceKind::ALL {
            assert!(out.contains(kind.name()), "missing {}", kind.name());
        }
    }
}
