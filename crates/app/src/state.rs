//! The application state machine behind every DeviceScope view: dataset
//! selection, series loading, window navigation, appliance selection, and
//! the lazily trained per-(dataset, appliance) CamAL models.

use crate::cache::{BoundedCache, CacheCounters};
use ds_camal::{
    Backbone, Camal, CamalConfig, CamalError, Detection, FrozenCamal, Localization, Precision,
    StreamingCamal,
};
use ds_datasets::labels::Corpus;
use ds_datasets::{ApplianceKind, Catalog, DatasetPreset};
use ds_timeseries::missing::{impute, Imputation};
use ds_timeseries::window::{WindowCursor, WindowLength};
use ds_timeseries::{StatusSeries, StreamCursor, StreamEvent, TimeSeries};
use std::collections::BTreeMap;

/// Key of a whole-series status prediction: `(dataset, house, appliance,
/// window samples, push stride)` — everything the prediction is a function
/// of. The stride distinguishes streaming-fed entries (stride > 0) from
/// batch recomputes ([`BATCH_STRIDE`]), so the two can never alias.
type SeriesKey = (String, u32, &'static str, usize, usize);

/// Key of one window's localization: a [`SeriesKey`] plus the window index.
type WindowKey = (String, u32, &'static str, usize, usize, usize);

/// Key of a streaming engine: `(dataset, house, appliance, window samples,
/// push stride, backbone, precision)` — one live stream per browsing
/// context.
type StreamKey = (String, u32, &'static str, usize, usize, Backbone, Precision);

/// Key of a trained model: `(dataset, appliance, window samples,
/// backbone)` — one trained ensemble per architecture, so comparing
/// backbones never retrains the ones already built.
type ModelKey = (String, &'static str, usize, Backbone);

/// Key of a frozen serving plan: a [`ModelKey`] plus the numeric
/// precision — the f32 and int8 plans of one model are distinct cache
/// entries, so switching precision (or backbone) back and forth never
/// re-folds or re-quantizes.
type PlanKey = (String, &'static str, usize, Backbone, Precision);

/// Held-out windows retained per trained model for int8 activation-scale
/// calibration. A small set is enough to pin per-conv maxabs ranges; the
/// flip-rate-vs-set-size study lives in EXPERIMENTS.md.
const CALIBRATION_WINDOWS: usize = 32;

/// Whole-series status predictions cached for the insights view. Small
/// bound: each entry is one `u8` per sample of a loaded series.
const STATUS_CACHE_CAP: usize = 32;

/// Per-window localizations cached for the playground overlay; sized so a
/// full browsing session (windows × appliances) stays resident.
const WINDOW_CACHE_CAP: usize = 512;

/// Frozen inference plans cached per trained model. Each plan owns its
/// arenas (a few windows' worth of floats per member), so the bound stays
/// small; a miss only re-folds BatchNorm — it never retrains.
const FROZEN_CACHE_CAP: usize = 8;

/// Live streaming engines cached per browsing context. Each holds
/// per-window artifact slabs for one whole series, so the bound is tight;
/// a miss re-folds a plan and replays the series through the stream.
const STREAM_CACHE_CAP: usize = 4;

/// Stride marker for batch-computed cache entries (no streaming push).
const BATCH_STRIDE: usize = 0;

/// Counters of the streaming-engine cache.
const STREAM_COUNTERS: CacheCounters = CacheCounters {
    hits: "cache.streaming.hits",
    misses: "cache.streaming.misses",
    evictions: "cache.streaming.evictions",
};

/// Counters of the frozen-plan cache.
const FROZEN_COUNTERS: CacheCounters = CacheCounters {
    hits: "cache.frozen_plan.hits",
    misses: "cache.frozen_plan.misses",
    evictions: "cache.frozen_plan.evictions",
};

/// Counters of the whole-series status cache.
const STATUS_COUNTERS: CacheCounters = CacheCounters {
    hits: "cache.status_series.hits",
    misses: "cache.status_series.misses",
    evictions: "cache.status_series.evictions",
};

/// Counters of the per-window localization cache.
const WINDOW_COUNTERS: CacheCounters = CacheCounters {
    hits: "cache.window_localization.hits",
    misses: "cache.window_localization.misses",
    evictions: "cache.window_localization.evictions",
};

/// Push stride (samples) the app feeds its streaming engines with: w/4,
/// i.e. successive emits overlap 75% — the regime the `streaming_predict`
/// bench gates. Emitted artifacts are stride-invariant by contract; the
/// stride still participates in cache keys so streaming entries and batch
/// entries stay distinct.
fn stream_stride(window_samples: usize) -> usize {
    (window_samples / 4).max(1)
}

/// Application-wide configuration.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// CamAL hyper-parameters used for on-demand training.
    pub camal: CamalConfig,
    /// Houses per generated dataset (small by default for responsiveness).
    pub houses: u32,
    /// Days per generated dataset.
    pub days: u32,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            camal: CamalConfig::default(),
            houses: 6,
            days: 7,
        }
    }
}

impl AppConfig {
    /// A configuration small enough for unit tests and quick demos.
    pub fn fast_test() -> AppConfig {
        AppConfig {
            camal: CamalConfig::fast_test(),
            houses: 4,
            days: 2,
        }
    }
}

/// Errors surfaced to the user by the app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// The dataset name is not in the catalog.
    UnknownDataset(String),
    /// The house id is not in the selected dataset.
    UnknownHouse(u32),
    /// An operation needed a loaded series.
    NothingLoaded,
    /// The appliance name did not parse.
    UnknownAppliance(String),
    /// The series is too short for the requested window length.
    WindowTooLong(String),
    /// The CamAL serving layer rejected the request (empty corpus, empty
    /// window, length mismatch, …) — surfaced instead of aborting the REPL.
    Model(CamalError),
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::UnknownDataset(d) => {
                write!(f, "unknown dataset {d:?} (try UKDALE, REFIT, IDEAL)")
            }
            AppError::UnknownHouse(h) => write!(f, "house {h} not found in the selected dataset"),
            AppError::NothingLoaded => write!(f, "load a series first (load <dataset> <house>)"),
            AppError::UnknownAppliance(a) => write!(f, "unknown appliance {a:?}"),
            AppError::WindowTooLong(m) => write!(f, "{m}"),
            AppError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<CamalError> for AppError {
    fn from(e: CamalError) -> Self {
        AppError::Model(e)
    }
}

/// A lazily trained CamAL model plus the held-out windows retained for
/// int8 calibration — quantizing later must not rebuild the corpus.
struct TrainedModel {
    camal: Camal,
    calib: Vec<Vec<f32>>,
}

/// The DeviceScope application state.
pub struct AppState {
    config: AppConfig,
    catalog: Catalog,
    models: BTreeMap<ModelKey, TrainedModel>,
    frozen: BoundedCache<PlanKey, FrozenCamal>,
    streams: BoundedCache<StreamKey, StreamingCamal>,
    status_cache: BoundedCache<SeriesKey, StatusSeries>,
    window_cache: BoundedCache<WindowKey, Localization>,
    /// Numeric precision new frozen plans are built at (`precision`
    /// REPL command); per-plan cache entries are keyed on it.
    precision: Precision,
    /// Detector architecture newly trained ensembles use (`backbone`
    /// REPL command); model/plan/stream cache entries are keyed on it.
    backbone: Backbone,
    /// Currently selected dataset.
    pub dataset: Option<DatasetPreset>,
    /// Currently loaded house.
    pub house_id: Option<u32>,
    cursor: Option<WindowCursor>,
    /// Current window length.
    pub window_length: WindowLength,
    /// Appliances the user selected for status overlay.
    pub selected: Vec<ApplianceKind>,
}

impl AppState {
    /// Create the app with its dataset catalog.
    pub fn new(config: AppConfig) -> AppState {
        // The interactive-serving SLO (ROADMAP item 3): p99 frozen window
        // latency under 50 ms. Declared here so `profile` and `snapshot()`
        // verdicts cover every session; 0.05 is a DurationSecs bucket
        // bound, keeping the burn counter exact.
        ds_obs::declare_budget(
            "frozen_window_latency",
            "app.frozen.window_latency_s",
            ds_obs::Quantile::P99,
            0.050,
        );
        let catalog = Catalog::tiny(config.houses, config.days);
        AppState {
            config,
            catalog,
            models: BTreeMap::new(),
            frozen: BoundedCache::with_counters(FROZEN_CACHE_CAP, FROZEN_COUNTERS),
            streams: BoundedCache::with_counters(STREAM_CACHE_CAP, STREAM_COUNTERS),
            status_cache: BoundedCache::with_counters(STATUS_CACHE_CAP, STATUS_COUNTERS),
            window_cache: BoundedCache::with_counters(WINDOW_CACHE_CAP, WINDOW_COUNTERS),
            dataset: None,
            house_id: None,
            cursor: None,
            window_length: WindowLength::TwelveHours,
            selected: Vec::new(),
            precision: Precision::default(),
            backbone: Backbone::default(),
        }
    }

    /// Numeric precision frozen plans are currently served at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Detector architecture the session currently trains and serves.
    pub fn backbone(&self) -> Backbone {
        self.backbone
    }

    /// Switch the detector architecture. Prediction caches and live
    /// streams are invalidated exactly as in [`AppState::set_precision`] —
    /// they hold outputs of the outgoing backbone — while trained models
    /// and frozen plans survive under their backbone-tagged keys, so
    /// flipping back is instant.
    pub fn set_backbone(&mut self, backbone: Backbone) {
        if backbone != self.backbone {
            self.backbone = backbone;
            self.status_cache.clear();
            self.window_cache.clear();
            self.streams.clear();
        }
    }

    /// Switch the serving precision. Whole-series and per-window caches
    /// are invalidated, and live streaming engines are dropped — their
    /// slabs hold artifacts of the outgoing precision's plan: int8 and
    /// f32 agree on decisions by contract, but CAM values differ within
    /// tolerance and a stale overlay must not outlive the switch. Trained
    /// models and already-built plans (keyed per precision) survive.
    pub fn set_precision(&mut self, precision: Precision) {
        if precision != self.precision {
            self.precision = precision;
            self.status_cache.clear();
            self.window_cache.clear();
            self.streams.clear();
        }
    }

    /// Dataset names offered in the sidebar.
    pub fn dataset_names(&self) -> Vec<&'static str> {
        self.catalog.names()
    }

    /// House ids available for browsing in `dataset` — the *test* houses,
    /// honoring the paper's rule that demo series come from houses never
    /// used in training.
    pub fn browsable_houses(&mut self, dataset: DatasetPreset) -> Vec<u32> {
        self.catalog
            .get(dataset)
            .test_houses()
            .iter()
            .map(|h| h.id())
            .collect()
    }

    /// Summary statistics of a dataset (the app's info panel).
    pub fn dataset_stats(&mut self, preset: DatasetPreset) -> ds_datasets::stats::DatasetStats {
        ds_datasets::stats::summarize(self.catalog.get(preset))
    }

    /// Load a house's aggregate series for browsing.
    pub fn load(&mut self, dataset_name: &str, house_id: u32) -> Result<(), AppError> {
        let preset = DatasetPreset::parse(dataset_name)
            .ok_or_else(|| AppError::UnknownDataset(dataset_name.to_string()))?;
        let ds = self.catalog.get(preset);
        let house = ds.house(house_id).ok_or(AppError::UnknownHouse(house_id))?;
        let series = house.aggregate().clone();
        self.cursor = Some(self.make_cursor(series)?);
        self.dataset = Some(preset);
        self.house_id = Some(house_id);
        Ok(())
    }

    fn make_cursor(&self, series: TimeSeries) -> Result<WindowCursor, AppError> {
        WindowCursor::new(series, self.window_length)
            .map_err(|e| AppError::WindowTooLong(e.to_string()))
    }

    /// Change the window length, preserving the loaded series.
    pub fn set_window_length(&mut self, length: WindowLength) -> Result<(), AppError> {
        self.window_length = length;
        if let Some(cursor) = self.cursor.take() {
            let series = cursor.series().clone();
            self.cursor = Some(self.make_cursor(series)?);
        }
        Ok(())
    }

    /// Move to the next window. Returns whether the view changed.
    #[allow(clippy::should_implement_trait)] // "Next" is the GUI button, not an iterator
    pub fn next(&mut self) -> Result<bool, AppError> {
        Ok(self.cursor.as_mut().ok_or(AppError::NothingLoaded)?.next())
    }

    /// Move to the previous window. Returns whether the view changed.
    pub fn prev(&mut self) -> Result<bool, AppError> {
        Ok(self.cursor.as_mut().ok_or(AppError::NothingLoaded)?.prev())
    }

    /// `(current index, window count)` of the pager.
    pub fn page(&self) -> Result<(usize, usize), AppError> {
        let c = self.cursor.as_ref().ok_or(AppError::NothingLoaded)?;
        Ok((c.index(), c.count()))
    }

    /// The currently displayed window.
    pub fn current_window(&self) -> Result<TimeSeries, AppError> {
        Ok(self
            .cursor
            .as_ref()
            .ok_or(AppError::NothingLoaded)?
            .current())
    }

    /// Toggle an appliance in the overlay selection; returns its new state.
    pub fn toggle_appliance(&mut self, name: &str) -> Result<bool, AppError> {
        let kind = ApplianceKind::parse(name)
            .ok_or_else(|| AppError::UnknownAppliance(name.to_string()))?;
        if let Some(pos) = self.selected.iter().position(|&k| k == kind) {
            self.selected.remove(pos);
            Ok(false)
        } else {
            self.selected.push(kind);
            Ok(true)
        }
    }

    /// Ground-truth status of `kind` for the current window (evaluation /
    /// per-device view only, exactly like the paper's per-device tab).
    pub fn current_truth(&mut self, kind: ApplianceKind) -> Result<Vec<u8>, AppError> {
        let (preset, house_id) = self.loaded()?;
        let (lo, len) = self.current_range()?;
        let ds = self.catalog.get(preset);
        let house = ds.house(house_id).ok_or(AppError::UnknownHouse(house_id))?;
        let status = house.status(kind);
        // Simulated submeter truth is complete, so the binary view of the
        // tri-state ground truth is lossless.
        Ok(status.states()[lo..lo + len]
            .iter()
            .map(|s| s.as_binary())
            .collect())
    }

    /// Ground-truth submetered power of `kind` for the current window.
    pub fn current_channel(&mut self, kind: ApplianceKind) -> Result<Option<TimeSeries>, AppError> {
        let (preset, house_id) = self.loaded()?;
        let (lo, len) = self.current_range()?;
        let ds = self.catalog.get(preset);
        let house = ds.house(house_id).ok_or(AppError::UnknownHouse(house_id))?;
        Ok(house
            .channel(kind)
            .map(|ch| ch.slice(lo, lo + len).expect("cursor range is valid")))
    }

    fn loaded(&self) -> Result<(DatasetPreset, u32), AppError> {
        match (self.dataset, self.house_id) {
            (Some(d), Some(h)) => Ok((d, h)),
            _ => Err(AppError::NothingLoaded),
        }
    }

    fn current_range(&self) -> Result<(usize, usize), AppError> {
        let c = self.cursor.as_ref().ok_or(AppError::NothingLoaded)?;
        Ok((c.index() * c.window_size(), c.window_size()))
    }

    /// The CamAL model for `(current dataset, kind)` at the current window
    /// length, training it on the dataset's *train* houses on first use.
    pub fn model(&mut self, kind: ApplianceKind) -> Result<&Camal, AppError> {
        Ok(&self.trained(kind)?.camal)
    }

    /// The trained model with its retained calibration windows, training
    /// on first use. Calibration windows are held-out test windows (train
    /// windows as fallback so a test-house-free corpus still quantizes) —
    /// the activation ranges must reflect the serving distribution, not
    /// the balanced training set.
    fn trained(&mut self, kind: ApplianceKind) -> Result<&TrainedModel, AppError> {
        let (preset, _) = self.loaded()?;
        let window_samples = self
            .window_length
            .samples(self.current_window()?.interval_secs());
        let key: ModelKey = (
            preset.name().to_string(),
            kind.slug(),
            window_samples,
            self.backbone,
        );
        if !self.models.contains_key(&key) {
            let ds = self.catalog.get(preset);
            let mut corpus = Corpus::build(ds, kind, window_samples);
            corpus.balance_train(3);
            let pool = if corpus.test.is_empty() {
                &corpus.train
            } else {
                &corpus.test
            };
            let calib: Vec<Vec<f32>> = pool
                .iter()
                .take(CALIBRATION_WINDOWS)
                .map(|w| w.values.clone())
                .collect();
            // Train at the session backbone: every ensemble member uses the
            // selected architecture, so the model's lead backbone (and its
            // serving registry identity) matches the cache key.
            let mut camal_cfg = self.config.camal.clone();
            camal_cfg.backbones = vec![self.backbone];
            let camal = Camal::try_train(&corpus, &camal_cfg)?;
            self.models
                .insert(key.clone(), TrainedModel { camal, calib });
        }
        Ok(self.models.get(&key).expect("inserted above"))
    }

    /// Export every *selected* appliance's trained model (training on
    /// first use) into a ds-serve [`ds_serve::ModelRegistry`], so the
    /// REPL's `serve` command shares the session's models — and their
    /// int8 calibration sets — with the HTTP front. Returns the
    /// registered `(preset, appliance, window_samples, backbone)`
    /// identities (the backbone is the session backbone the models were
    /// trained at). Frozen plans are *not* exported: the server freezes
    /// per (plan key) on first request, exactly like the in-app cache.
    pub fn register_serving_models(
        &mut self,
        registry: &ds_serve::ModelRegistry,
    ) -> Result<Vec<(String, String, usize, Backbone)>, AppError> {
        let kinds = self.selected.clone();
        let backbone = self.backbone;
        let mut registered = Vec::with_capacity(kinds.len());
        for kind in kinds {
            let (preset, _) = self.loaded()?;
            let preset_name = preset.name().to_string();
            let window_samples = self
                .window_length
                .samples(self.current_window()?.interval_secs());
            let trained = self.trained(kind)?;
            registry.register(
                &preset_name,
                kind.slug(),
                window_samples,
                trained.camal.clone(),
                trained.calib.clone(),
            );
            registered.push((
                preset_name,
                kind.slug().to_string(),
                window_samples,
                backbone,
            ));
        }
        Ok(registered)
    }

    /// The frozen serving plan for `(current dataset, kind)` at the current
    /// window length and the session's [`AppState::precision`]: BN-folded,
    /// ReLU-fused, arena-backed — int8-quantized on the retained
    /// calibration windows when the precision is [`Precision::Int8`].
    /// Built once per `(model, precision)` and then reused — Prev/Next
    /// navigation never re-folds or re-quantizes, and the plan's warm
    /// arenas make repeat predictions allocation-free.
    pub fn frozen_model(&mut self, kind: ApplianceKind) -> Result<&mut FrozenCamal, AppError> {
        let (preset, _) = self.loaded()?;
        let window_samples = self
            .window_length
            .samples(self.current_window()?.interval_secs());
        let precision = self.precision;
        let key: PlanKey = (
            preset.name().to_string(),
            kind.slug(),
            window_samples,
            self.backbone,
            precision,
        );
        if self.frozen.get(&key).is_none() {
            ds_obs::counter_add(FROZEN_COUNTERS.misses, 1);
            let trained = self.trained(kind)?;
            let plan = match precision {
                Precision::F32 => trained.camal.freeze(),
                Precision::Int8 => trained.camal.freeze_quantized(&trained.calib),
            };
            self.frozen.insert(key.clone(), plan);
        } else {
            ds_obs::counter_add(FROZEN_COUNTERS.hits, 1);
        }
        Ok(self.frozen.get_mut(&key).expect("present or just inserted"))
    }

    /// Detect `kind` in a cleaned window on the frozen path, recording the
    /// per-window serving latency (`app.frozen.window_latency_s` — the
    /// REPL's `obs` view reports its p50/p99 against the 50 ms interactive
    /// render budget).
    pub fn frozen_detect(
        &mut self,
        kind: ApplianceKind,
        window: &[f32],
    ) -> Result<Detection, AppError> {
        let start = ds_obs::enabled().then(std::time::Instant::now);
        let detection = self.frozen_model(kind)?.detect(window);
        if let Some(start) = start {
            ds_obs::observe(
                "app.frozen.window_latency_s",
                start.elapsed().as_secs_f64(),
                ds_obs::Buckets::DurationSecs,
            );
        }
        Ok(detection)
    }

    /// Localize `kind` in a cleaned window on the frozen path, recording
    /// the per-window serving latency like [`AppState::frozen_detect`].
    pub fn frozen_localize(
        &mut self,
        kind: ApplianceKind,
        window: &[f32],
    ) -> Result<Localization, AppError> {
        let start = ds_obs::enabled().then(std::time::Instant::now);
        let localization = self.frozen_model(kind)?.localize(window);
        if let Some(start) = start {
            ds_obs::observe(
                "app.frozen.window_latency_s",
                start.elapsed().as_secs_f64(),
                ds_obs::Buckets::DurationSecs,
            );
        }
        Ok(localization)
    }

    /// Whole-series binary ground-truth status of `kind` for the loaded
    /// house — the evaluation axis of the backbone comparison view.
    pub fn series_truth(&mut self, kind: ApplianceKind) -> Result<Vec<u8>, AppError> {
        let (preset, house_id) = self.loaded()?;
        let ds = self.catalog.get(preset);
        let house = ds.house(house_id).ok_or(AppError::UnknownHouse(house_id))?;
        Ok(house
            .status(kind)
            .states()
            .iter()
            .map(|s| s.as_binary())
            .collect())
    }

    /// Whole-series predicted status of `kind` at the current window
    /// length, served from the status cache (streaming-fed on a miss) —
    /// the same entries the insights view uses.
    pub fn predicted_status(&mut self, kind: ApplianceKind) -> Result<StatusSeries, AppError> {
        let cursor = self.cursor.as_ref().ok_or(AppError::NothingLoaded)?;
        let series = cursor.series().clone();
        let window = cursor.window_size();
        let (preset, house_id) = self.loaded()?;
        let key: SeriesKey = (
            preset.name().to_string(),
            house_id,
            kind.slug(),
            window,
            stream_stride(window),
        );
        self.cached_status_series(key, &series, window, kind)
    }

    /// The full submetered channel of `kind` for the loaded house (None if
    /// not possessed) — used by the insights view for exact energy.
    pub fn full_channel(&mut self, kind: ApplianceKind) -> Result<Option<TimeSeries>, AppError> {
        let (preset, house_id) = self.loaded()?;
        let ds = self.catalog.get(preset);
        let house = ds.house(house_id).ok_or(AppError::UnknownHouse(house_id))?;
        Ok(house.channel(kind).cloned())
    }

    /// Consumption insights over the whole loaded series: predicted usage of
    /// every selected appliance (see [`crate::insights`]). Returns the usage
    /// records and the household total in kWh.
    pub fn insights(&mut self) -> Result<(Vec<crate::insights::ApplianceUsage>, f64), AppError> {
        let cursor = self.cursor.as_ref().ok_or(AppError::NothingLoaded)?;
        let series = cursor.series().clone();
        let window = cursor.window_size();
        let total_kwh = series.energy_wh() / 1000.0;
        let (preset, house_id) = self.loaded()?;
        let selected = self.selected.clone();
        let mut usages = Vec::with_capacity(selected.len());
        for kind in selected {
            let channel = self.full_channel(kind)?;
            let key: SeriesKey = (
                preset.name().to_string(),
                house_id,
                kind.slug(),
                window,
                stream_stride(window),
            );
            let status = self.cached_status_series(key, &series, window, kind)?;
            usages.push(crate::insights::appliance_usage(
                kind,
                &status,
                &series,
                channel.as_ref(),
            ));
        }
        Ok((usages, total_kwh))
    }

    /// The whole-series status prediction for `key`, computed once and then
    /// served from the bounded cache. Misses are served by the streaming
    /// engine: absorbed windows replay from its slabs and only the
    /// end-aligned tail runs the model — bit-identical to the batch
    /// `predict_status_series` by the streaming contract.
    fn cached_status_series(
        &mut self,
        key: SeriesKey,
        series: &TimeSeries,
        window: usize,
        kind: ApplianceKind,
    ) -> Result<StatusSeries, AppError> {
        if let Some(hit) = self.status_cache.get(&key) {
            ds_obs::counter_add(STATUS_COUNTERS.hits, 1);
            return Ok(hit.clone());
        }
        ds_obs::counter_add(STATUS_COUNTERS.misses, 1);
        let status = self.streaming_engine(kind, series, window)?.status_series();
        self.status_cache.insert(key, status.clone());
        Ok(status)
    }

    /// The live streaming engine for the loaded house and `kind` at
    /// `window_samples`, built on first use (cloning the cached frozen
    /// plan at the session precision — never re-folding or retraining)
    /// and fed the series suffix it has not seen yet as stride-sized
    /// deltas and gap events.
    fn streaming_engine(
        &mut self,
        kind: ApplianceKind,
        series: &TimeSeries,
        window_samples: usize,
    ) -> Result<&mut StreamingCamal, AppError> {
        let (preset, house_id) = self.loaded()?;
        let stride = stream_stride(window_samples);
        let precision = self.precision;
        let key: StreamKey = (
            preset.name().to_string(),
            house_id,
            kind.slug(),
            window_samples,
            stride,
            self.backbone,
            precision,
        );
        if self.streams.get(&key).is_none() {
            ds_obs::counter_add(STREAM_COUNTERS.misses, 1);
            // Clone the plan out of the frozen cache: folding/quantization
            // stays cached once per (model, precision), and the batch path
            // keeps its own warm arenas.
            let plan = self.frozen_model(kind)?.clone();
            let max_windows = series.len().div_ceil(window_samples).max(1);
            self.streams.insert(
                key.clone(),
                StreamingCamal::new(plan, window_samples, max_windows),
            );
        } else {
            ds_obs::counter_add(STREAM_COUNTERS.hits, 1);
        }
        let stream = self
            .streams
            .get_mut(&key)
            .expect("present or just inserted");
        feed_stream(stream, series)?;
        Ok(stream)
    }

    /// Localize every selected appliance in the current window. Visited
    /// `(window, appliance)` pairs are served from a bounded cache; unseen
    /// gap-free windows come from the streaming engine's slabs (Prev/Next
    /// pays at most one tail window of model work per step, not a full
    /// recompute), and gappy windows fall back to the imputing batch path.
    pub fn localize_selected(
        &mut self,
    ) -> Result<Vec<(ApplianceKind, ds_camal::Localization)>, AppError> {
        let window = self.current_window()?;
        let (preset, house_id) = self.loaded()?;
        let (window_index, _) = self.page()?;
        let selected = self.selected.clone();
        let w = window.len();
        let clean_window = window.missing_count() == 0;
        // Streaming-served and batch-served entries carry their stride in
        // the key, so the two can never alias.
        let stride = if clean_window {
            stream_stride(w)
        } else {
            BATCH_STRIDE
        };
        let series = self
            .cursor
            .as_ref()
            .ok_or(AppError::NothingLoaded)?
            .series()
            .clone();
        let mut out = Vec::with_capacity(selected.len());
        for kind in selected {
            let key: WindowKey = (
                preset.name().to_string(),
                house_id,
                kind.slug(),
                w,
                stride,
                window_index,
            );
            if let Some(hit) = self.window_cache.get(&key) {
                ds_obs::counter_add(WINDOW_COUNTERS.hits, 1);
                out.push((kind, hit.clone()));
                continue;
            }
            ds_obs::counter_add(WINDOW_COUNTERS.misses, 1);
            let localization = if clean_window {
                // Clean aligned windows replay from the streaming slabs —
                // bit-identical to the batch localization by the
                // streaming contract.
                self.streaming_engine(kind, &series, w)?
                    .window_localization(window_index)
            } else {
                // Inference needs a gap-free input. Gaps are linearly
                // interpolated — a zero fill would read as a real "all off"
                // power level and silently bias the decision toward Off —
                // and the views mask the gap timesteps back to `Unknown` at
                // render time, so imputed decisions are never presented as
                // certain.
                let missing = window.missing_count();
                ds_obs::counter_add("serve.degraded_windows", 1);
                ds_obs::counter_add("serve.unknown_samples", missing as u64);
                let clean = impute(&window, Imputation::Linear).into_values();
                self.frozen_localize(kind, &clean)?
            };
            self.window_cache.insert(key, localization.clone());
            out.push((kind, localization));
        }
        Ok(out)
    }
}

/// Push the not-yet-streamed suffix of `series` into `stream` as suffix
/// deltas: present runs in stride-sized pushes, gaps as explicit missing
/// pushes — so the stream always covers the full series length and its
/// emits line up index-for-index with the batch path.
fn feed_stream(stream: &mut StreamingCamal, series: &TimeSeries) -> Result<(), AppError> {
    let done = stream.len();
    if done >= series.len() {
        return Ok(());
    }
    let stride = stream_stride(stream.window_samples());
    let interval = series.interval_secs();
    let suffix = series
        .slice(done, series.len())
        .expect("suffix range is valid");
    for event in StreamCursor::new(&suffix, stride) {
        let push = match event {
            StreamEvent::Samples { index, values } => TimeSeries::from_values(
                suffix.start() + index as i64 * interval as i64,
                interval,
                values.to_vec(),
            ),
            StreamEvent::Gap { index, len } => TimeSeries::missing(
                suffix.start() + index as i64 * interval as i64,
                interval,
                len,
            ),
        };
        stream.try_push(&push)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> AppState {
        AppState::new(AppConfig::fast_test())
    }

    #[test]
    fn dataset_listing() {
        let state = app();
        assert_eq!(state.dataset_names(), vec!["UKDALE", "REFIT", "IDEAL"]);
    }

    #[test]
    fn load_and_navigate() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        assert!(!houses.is_empty());
        state.load("UKDALE", houses[0]).unwrap();
        let (idx, count) = state.page().unwrap();
        assert_eq!(idx, 0);
        assert_eq!(count, 2 * 2); // 2 days of 12h windows
        assert!(state.next().unwrap());
        assert_eq!(state.page().unwrap().0, 1);
        assert!(state.prev().unwrap());
        assert!(!state.prev().unwrap());
        let w = state.current_window().unwrap();
        assert_eq!(w.len(), 720);
    }

    #[test]
    fn model_errors_map_into_app_errors() {
        let e: AppError = CamalError::EmptyWindow.into();
        assert_eq!(e, AppError::Model(CamalError::EmptyWindow));
        assert!(e.to_string().contains("empty window"));
    }

    #[test]
    fn load_failures() {
        let mut state = app();
        assert_eq!(
            state.load("NOPE", 0),
            Err(AppError::UnknownDataset("NOPE".into()))
        );
        assert_eq!(state.load("UKDALE", 99), Err(AppError::UnknownHouse(99)));
        assert_eq!(state.next(), Err(AppError::NothingLoaded));
        assert_eq!(state.current_window().unwrap_err(), AppError::NothingLoaded);
    }

    #[test]
    fn window_length_switch_preserves_series() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::RefitLike);
        state.load("REFIT", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        assert_eq!(state.current_window().unwrap().len(), 360);
        state.set_window_length(WindowLength::OneDay).unwrap();
        assert_eq!(state.current_window().unwrap().len(), 1440);
    }

    #[test]
    fn appliance_toggle() {
        let mut state = app();
        assert!(state.toggle_appliance("kettle").unwrap());
        assert!(state.toggle_appliance("Dishwasher").unwrap());
        assert_eq!(state.selected.len(), 2);
        assert!(!state.toggle_appliance("kettle").unwrap());
        assert_eq!(state.selected, vec![ApplianceKind::Dishwasher]);
        assert!(state.toggle_appliance("fridge").is_err());
    }

    #[test]
    fn truth_and_channel_access() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        let truth = state.current_truth(ApplianceKind::Kettle).unwrap();
        assert_eq!(truth.len(), 720);
        // Channel exists iff the house possesses the appliance.
        let ch = state.current_channel(ApplianceKind::Kettle).unwrap();
        let ds = state.catalog.get(DatasetPreset::UkdaleLike);
        let possesses = ds
            .house(houses[0])
            .unwrap()
            .possesses(ApplianceKind::Kettle);
        assert_eq!(ch.is_some(), possesses);
    }

    #[test]
    fn window_navigation_is_served_from_cache() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state.toggle_appliance("kettle").unwrap();
        let first = state.localize_selected().unwrap();
        assert_eq!(state.window_cache.len(), 1);
        state.next().unwrap();
        let second = state.localize_selected().unwrap();
        assert_eq!(state.window_cache.len(), 2);
        // Going back must reuse the cached localization, not recompute.
        state.prev().unwrap();
        let back = state.localize_selected().unwrap();
        assert_eq!(state.window_cache.len(), 2);
        assert_eq!(back[0].1, first[0].1);
        assert_ne!(second[0].1.cam, first[0].1.cam);
    }

    #[test]
    fn insights_status_series_is_cached() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state.toggle_appliance("kettle").unwrap();
        let (u1, t1) = state.insights().unwrap();
        assert_eq!(state.status_cache.len(), 1);
        let (u2, t2) = state.insights().unwrap();
        assert_eq!(state.status_cache.len(), 1);
        assert_eq!(t1, t2);
        assert_eq!(u1.len(), u2.len());
        assert_eq!(u1[0].energy_kwh, u2[0].energy_kwh);
        assert_eq!(u1[0].activations, u2[0].activations);
    }

    #[test]
    fn precision_switch_builds_separate_plans_and_preserves_decisions() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state.toggle_appliance("kettle").unwrap();
        assert_eq!(state.precision(), Precision::F32);
        let f32_out = state.localize_selected().unwrap();

        state.set_precision(Precision::Int8);
        // Prediction caches and live streams are invalidated, the trained
        // model survives.
        assert_eq!(state.window_cache.len(), 0);
        assert_eq!(state.streams.len(), 0);
        assert_eq!(state.models.len(), 1);
        let int8_out = state.localize_selected().unwrap();
        let plan = state.frozen_model(ApplianceKind::Kettle).unwrap();
        assert_eq!(plan.precision(), Precision::Int8);
        // The quantized contract: decisions match the f32 plan.
        assert_eq!(f32_out[0].1.status, int8_out[0].1.status);

        // Both plans stay cached under their own keys: switching back
        // re-serves the f32 plan without re-folding or re-quantizing.
        state.set_precision(Precision::F32);
        assert_eq!(state.frozen.len(), 2);
        let plan = state.frozen_model(ApplianceKind::Kettle).unwrap();
        assert_eq!(plan.precision(), Precision::F32);
        let back = state.localize_selected().unwrap();
        assert_eq!(back[0].1, f32_out[0].1);

        // Setting the current precision again is a no-op, not a flush.
        let cached = state.window_cache.len();
        state.set_precision(Precision::F32);
        assert_eq!(state.window_cache.len(), cached);
    }

    #[test]
    fn backbone_switch_builds_separate_models_and_plans() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state.toggle_appliance("kettle").unwrap();
        assert_eq!(state.backbone(), Backbone::ResNet);
        let resnet_out = state.localize_selected().unwrap();

        state.set_backbone(Backbone::Inception);
        // Prediction caches and live streams are invalidated; the ResNet
        // model and plan survive under their backbone-tagged keys.
        assert_eq!(state.window_cache.len(), 0);
        assert_eq!(state.streams.len(), 0);
        assert_eq!(state.models.len(), 1);
        let _ = state.localize_selected().unwrap();
        assert_eq!(state.models.len(), 2, "Inception trains its own model");
        let model = state.model(ApplianceKind::Kettle).unwrap();
        assert!(model
            .ensemble()
            .members()
            .iter()
            .all(|m| m.backbone() == Backbone::Inception));
        assert_eq!(state.frozen.len(), 2);

        // Switching back re-serves the ResNet model without retraining and
        // reproduces the original localization exactly.
        state.set_backbone(Backbone::ResNet);
        let back = state.localize_selected().unwrap();
        assert_eq!(state.models.len(), 2);
        assert_eq!(back[0].1, resnet_out[0].1);

        // Re-setting the current backbone is a no-op, not a flush.
        let cached = state.window_cache.len();
        state.set_backbone(Backbone::ResNet);
        assert_eq!(state.window_cache.len(), cached);
    }

    #[test]
    fn status_series_is_streamed_and_matches_batch_bitwise() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state.toggle_appliance("kettle").unwrap();
        let _ = state.insights().unwrap();
        // The insights miss built and fed one streaming engine.
        assert_eq!(state.streams.len(), 1);
        let series = state.cursor.as_ref().unwrap().series().clone();
        let batch = state
            .frozen_model(ApplianceKind::Kettle)
            .unwrap()
            .predict_status_series(&series, 360);
        let key: SeriesKey = (
            "UKDALE".to_string(),
            houses[0],
            ApplianceKind::Kettle.slug(),
            360,
            stream_stride(360),
        );
        let cached = state.status_cache.get(&key).expect("streamed entry cached");
        assert_eq!(cached.states(), batch.states());
        assert_eq!(cached.start(), batch.start());
    }

    #[test]
    fn navigation_windows_come_from_streaming_slabs_and_match_batch() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state.toggle_appliance("kettle").unwrap();
        state.next().unwrap();
        let out = state.localize_selected().unwrap();
        assert_eq!(state.streams.len(), 1);
        // The slab-served localization equals a direct frozen call on the
        // same window values (same weights, same kernels — bit-identical).
        let window = state.current_window().unwrap();
        let direct = state
            .frozen_localize(ApplianceKind::Kettle, window.values())
            .unwrap();
        assert_eq!(out[0].1, direct);
        // Revisiting reuses the engine (hit) instead of rebuilding it.
        state.prev().unwrap();
        let _ = state.localize_selected().unwrap();
        assert_eq!(state.streams.len(), 1);
    }

    #[test]
    fn model_training_is_cached_and_localization_runs() {
        let mut state = app();
        let houses = state.browsable_houses(DatasetPreset::UkdaleLike);
        state.load("UKDALE", houses[0]).unwrap();
        state.set_window_length(WindowLength::SixHours).unwrap();
        state.toggle_appliance("kettle").unwrap();
        let out = state.localize_selected().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.status.len(), 360);
        // Second call hits the cache (no retraining): just verify it works.
        let out2 = state.localize_selected().unwrap();
        assert_eq!(out2[0].1.status, out[0].1.status);
    }
}
