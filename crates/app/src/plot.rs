//! Plain-text rendering primitives: line charts, status strips, bars.
//!
//! All functions return `String`s (no direct terminal writes), keeping the
//! views deterministic and testable.

use ds_timeseries::time::format_compact;
use ds_timeseries::{Status, TimeSeries};

/// Render a power window as an ASCII line chart of `width × height` cells.
///
/// Values are bucket-averaged to `width` columns; missing buckets render as
/// `·` on the baseline. The y-axis is annotated with the max and min watts.
pub fn line_chart(series: &TimeSeries, width: usize, height: usize) -> String {
    let width = width.clamp(8, 200);
    let height = height.clamp(3, 40);
    let values = series.values();
    if values.is_empty() {
        return String::from("(empty series)\n");
    }
    // Bucket to `width` columns.
    let mut cols: Vec<Option<f32>> = Vec::with_capacity(width);
    for c in 0..width {
        let lo = c * values.len() / width;
        let hi = (((c + 1) * values.len()) / width)
            .max(lo + 1)
            .min(values.len());
        let present: Vec<f32> = values[lo..hi]
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        if present.is_empty() {
            cols.push(None);
        } else {
            cols.push(Some(present.iter().sum::<f32>() / present.len() as f32));
        }
    }
    let max = cols
        .iter()
        .flatten()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    let min = cols.iter().flatten().cloned().fold(f32::INFINITY, f32::min);
    let (max, min) = if max.is_finite() {
        (max, min)
    } else {
        (1.0, 0.0)
    };
    let range = (max - min).max(1e-6);

    let mut grid = vec![vec![' '; width]; height];
    for (c, col) in cols.iter().enumerate() {
        match col {
            Some(v) => {
                let level = ((v - min) / range * (height - 1) as f32).round() as usize;
                let row = height - 1 - level.min(height - 1);
                grid[row][c] = '█';
                // Fill below the marker for a solid profile.
                for r in grid.iter_mut().skip(row + 1) {
                    r[c] = '│';
                }
            }
            None => grid[height - 1][c] = '·',
        }
    }
    let mut out = String::with_capacity((width + 16) * (height + 2));
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{max:>8.0}W ")
        } else if r == height - 1 {
            format!("{min:>8.0}W ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10}{} … {}\n",
        "",
        format_compact(series.start()),
        format_compact(series.timestamp_at(series.len().saturating_sub(1)))
    ));
    out
}

/// Render a 0/1 status as a strip of `width` characters (`█` on, `─` off).
/// A bucket is ON if any sample inside it is ON.
pub fn status_strip(states: &[u8], width: usize) -> String {
    let width = width.clamp(8, 200);
    if states.is_empty() {
        return "─".repeat(width);
    }
    (0..width)
        .map(|c| {
            let lo = c * states.len() / width;
            let hi = (((c + 1) * states.len()) / width)
                .max(lo + 1)
                .min(states.len());
            if states[lo..hi].contains(&1) {
                '█'
            } else {
                '─'
            }
        })
        .collect()
}

/// Merge a window's binary localization with its raw input: a timestep
/// whose input sample was missing becomes [`Status::Unknown`] — its
/// decision was made on imputed data, so the app must not present it as
/// certain — while timesteps with a real sample keep the 0/1 decision.
pub fn tri_status(status: &[u8], values: &[f32]) -> Vec<Status> {
    debug_assert_eq!(status.len(), values.len(), "status/values length mismatch");
    status
        .iter()
        .zip(values)
        .map(|(&s, v)| {
            if v.is_nan() {
                Status::Unknown
            } else if s == 1 {
                Status::On
            } else {
                Status::Off
            }
        })
        .collect()
}

/// Render a tri-state status as a strip of `width` characters: `█` on,
/// `▒` unknown, `─` off. A bucket is ON if any sample inside it is ON;
/// otherwise UNKNOWN if any sample is unknown; otherwise OFF.
pub fn tri_status_strip(states: &[Status], width: usize) -> String {
    let width = width.clamp(8, 200);
    if states.is_empty() {
        return "─".repeat(width);
    }
    (0..width)
        .map(|c| {
            let lo = c * states.len() / width;
            let hi = (((c + 1) * states.len()) / width)
                .max(lo + 1)
                .min(states.len());
            let bucket = &states[lo..hi];
            if bucket.contains(&Status::On) {
                '█'
            } else if bucket.contains(&Status::Unknown) {
                '▒'
            } else {
                '─'
            }
        })
        .collect()
}

/// Render a probability in `[0,1]` as a labelled bar of `width` cells.
pub fn probability_bar(label: &str, p: f32, width: usize) -> String {
    let width = width.clamp(4, 100);
    let filled = ((p.clamp(0.0, 1.0)) * width as f32).round() as usize;
    format!(
        "{label:<18} [{}{}] {:.2}",
        "#".repeat(filled),
        "-".repeat(width - filled),
        p
    )
}

/// Render a simple aligned table from rows of cells.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!(
                "{:<w$}  ",
                cell,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(
        headers.iter().map(|h| h.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(
        &"-".repeat(
            widths
                .iter()
                .map(|w| w + 2)
                .sum::<usize>()
                .saturating_sub(2),
        ),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_shows_peak_at_top() {
        let mut values = vec![0.0f32; 80];
        values[40] = 1000.0;
        let ts = TimeSeries::from_values(0, 60, values);
        let chart = line_chart(&ts, 80, 8);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].contains("1000W"));
        assert!(lines[0].contains('█'), "peak missing from top row");
        assert!(lines.last().unwrap().contains("d0 00:00"));
    }

    #[test]
    fn line_chart_marks_missing() {
        let values = vec![f32::NAN; 60];
        let ts = TimeSeries::from_values(0, 60, values);
        let chart = line_chart(&ts, 30, 5);
        assert!(chart.contains('·'));
    }

    #[test]
    fn line_chart_handles_constant_and_empty() {
        let ts = TimeSeries::from_values(0, 60, vec![5.0; 10]);
        let chart = line_chart(&ts, 20, 4);
        assert!(chart.contains('█'));
        let empty = TimeSeries::from_values(0, 60, vec![]);
        assert_eq!(line_chart(&empty, 20, 4), "(empty series)\n");
    }

    #[test]
    fn status_strip_buckets_any_on() {
        let mut states = vec![0u8; 100];
        states[50] = 1;
        let strip = status_strip(&states, 10);
        assert_eq!(strip.chars().count(), 10);
        assert_eq!(strip.chars().filter(|&c| c == '█').count(), 1);
        assert_eq!(strip.chars().nth(5).unwrap(), '█');
        assert_eq!(status_strip(&[], 10).chars().count(), 10);
    }

    #[test]
    fn tri_status_masks_missing_samples() {
        let status = [1u8, 1, 0, 0];
        let values = [100.0, f32::NAN, f32::NAN, 5.0];
        assert_eq!(
            tri_status(&status, &values),
            vec![Status::On, Status::Unknown, Status::Unknown, Status::Off]
        );
    }

    #[test]
    fn tri_status_strip_ranks_on_over_unknown_over_off() {
        let mut states = vec![Status::Off; 30];
        states[1] = Status::Unknown; // bucket 0: unknown wins over off
        states[15] = Status::On;
        states[16] = Status::Unknown; // bucket 1: on wins over unknown
        let strip = tri_status_strip(&states, 10);
        assert_eq!(strip.chars().count(), 10);
        assert_eq!(strip.chars().next().unwrap(), '▒');
        assert_eq!(strip.chars().nth(5).unwrap(), '█');
        assert_eq!(strip.chars().nth(9).unwrap(), '─');
        assert_eq!(tri_status_strip(&[], 10).chars().count(), 10);
    }

    #[test]
    fn probability_bar_scales() {
        let bar = probability_bar("Kettle", 0.5, 10);
        assert!(bar.contains("#####-----"));
        assert!(bar.contains("0.50"));
        let full = probability_bar("Shower", 1.0, 10);
        assert!(full.contains("##########"));
        let clamped = probability_bar("x", 2.0, 10);
        assert!(clamped.contains("##########"));
    }

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["Method", "F1"],
            &[
                vec!["CamAL".into(), "0.91".into()],
                vec!["WeakSliding".into(), "0.41".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("Method"));
        assert!(lines[2].starts_with("CamAL"));
        // Columns align: "F1" header column position matches values.
        let f1_col = lines[0].find("F1").unwrap();
        assert_eq!(lines[2][f1_col..].trim(), "0.91");
        assert_eq!(lines[3][f1_col..].trim(), "0.41");
    }
}
