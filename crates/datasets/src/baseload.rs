//! Household base load: everything that is *not* one of the five target
//! appliances, i.e. the "background" an appliance detector must see
//! through. Composed of:
//!
//! - a constant **standby** floor (routers, clocks, chargers),
//! - **fridge/freezer compressor cycling** (square wave, ~30–60 min period),
//! - a time-of-day **lighting/entertainment** profile (morning and evening
//!   humps scaled by household size), and
//! - small wandering **miscellaneous** usage (random walk, clamped).
//!
//! All components are deterministic given the RNG, so house generation is
//! reproducible.

use crate::randutil::{normal, uniform};
use ds_timeseries::time::minute_of_day;
use ds_timeseries::TimeSeries;
use rand::Rng;

/// Parameters of a household's base load.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseloadProfile {
    /// Constant standby floor in watts.
    pub standby_w: f32,
    /// Fridge compressor draw when running, watts.
    pub fridge_w: f32,
    /// Fridge cycle period in minutes (on + off).
    pub fridge_period_min: u32,
    /// Fraction of the period the compressor runs, in (0, 1).
    pub fridge_duty: f32,
    /// Peak of the evening lighting/entertainment hump, watts.
    pub evening_peak_w: f32,
    /// Peak of the morning hump, watts.
    pub morning_peak_w: f32,
    /// Scale of the miscellaneous random walk, watts.
    pub misc_scale_w: f32,
}

impl BaseloadProfile {
    /// Draw a plausible household profile.
    pub fn sample(rng: &mut impl Rng) -> Self {
        BaseloadProfile {
            standby_w: uniform(rng, 40.0, 90.0),
            fridge_w: uniform(rng, 70.0, 130.0),
            fridge_period_min: uniform(rng, 30.0, 60.0) as u32,
            fridge_duty: uniform(rng, 0.3, 0.5),
            evening_peak_w: uniform(rng, 150.0, 400.0),
            morning_peak_w: uniform(rng, 80.0, 200.0),
            misc_scale_w: uniform(rng, 10.0, 40.0),
        }
    }

    /// Generate the base-load series.
    ///
    /// `start` is the Unix timestamp of the first sample; `len` the number
    /// of samples at `interval_secs`.
    pub fn generate(
        &self,
        rng: &mut impl Rng,
        start: i64,
        interval_secs: u32,
        len: usize,
    ) -> TimeSeries {
        let mut values = Vec::with_capacity(len);
        let period_samples =
            ((self.fridge_period_min as u64 * 60) / interval_secs.max(1) as u64).max(2) as usize;
        let on_samples = ((period_samples as f32 * self.fridge_duty).round() as usize)
            .clamp(1, period_samples - 1);
        // Random phase so houses don't cycle in lockstep.
        let phase = rng.gen_range(0..period_samples);
        let mut misc = 0.0f32;
        for i in 0..len {
            let t = start + i as i64 * interval_secs as i64;
            let fridge = if (i + phase) % period_samples < on_samples {
                self.fridge_w
            } else {
                0.0
            };
            let light = self.lighting_at(t);
            // Mean-reverting random walk for miscellaneous devices.
            misc = (misc * 0.98 + normal(rng, 0.0, self.misc_scale_w * 0.2))
                .clamp(-self.misc_scale_w, 3.0 * self.misc_scale_w);
            let v = self.standby_w + fridge + light + misc.max(0.0) + normal(rng, 0.0, 2.0);
            values.push(v.max(0.0));
        }
        TimeSeries::from_values(start, interval_secs, values)
    }

    /// Deterministic lighting/entertainment level at a timestamp: a morning
    /// hump around 07:30 and an evening hump around 20:00.
    pub fn lighting_at(&self, timestamp: i64) -> f32 {
        let m = minute_of_day(timestamp) as f32;
        let morning = gaussian_bump(m, 450.0, 90.0) * self.morning_peak_w;
        let evening = gaussian_bump(m, 1200.0, 150.0) * self.evening_peak_w;
        morning + evening
    }
}

fn gaussian_bump(x: f32, center: f32, width: f32) -> f32 {
    let d = (x - center) / width;
    (-0.5 * d * d).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> (BaseloadProfile, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        (BaseloadProfile::sample(&mut rng), rng)
    }

    #[test]
    fn generates_requested_shape() {
        let (p, mut rng) = profile();
        let ts = p.generate(&mut rng, 0, 60, 1440);
        assert_eq!(ts.len(), 1440);
        assert_eq!(ts.interval_secs(), 60);
        assert!(!ts.has_missing());
        assert!(ts.values().iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn floor_is_at_least_standby_when_fridge_off() {
        let (p, mut rng) = profile();
        let ts = p.generate(&mut rng, 0, 60, 1440);
        // Night samples (03:00-04:00) with fridge off should sit near standby.
        let min_night = ts.values()[180..240]
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        assert!(min_night > p.standby_w * 0.5, "night floor {min_night}");
    }

    #[test]
    fn fridge_cycles_visibly() {
        let (mut p, mut rng) = profile();
        p.evening_peak_w = 0.0;
        p.morning_peak_w = 0.0;
        p.misc_scale_w = 0.0;
        let ts = p.generate(&mut rng, 0, 60, 1440);
        let s = ds_timeseries::stats::summarize(&ts).unwrap();
        // Bimodal standby/standby+fridge: spread must be close to fridge power.
        assert!(
            s.max - s.min > p.fridge_w * 0.7,
            "fridge swing too small: {} ({})",
            s.max - s.min,
            p.fridge_w
        );
        // Duty cycle shows up in the mean.
        let expected = p.standby_w + p.fridge_w * p.fridge_duty;
        assert!(
            (s.mean - expected).abs() < p.fridge_w * 0.25,
            "mean {} vs {expected}",
            s.mean
        );
    }

    #[test]
    fn evening_exceeds_night_lighting() {
        let (p, _) = profile();
        let night = p.lighting_at(3 * 3600);
        let evening = p.lighting_at(20 * 3600);
        assert!(evening > night + p.evening_peak_w * 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let pa = BaseloadProfile::sample(&mut a);
        let pb = BaseloadProfile::sample(&mut b);
        assert_eq!(pa, pb);
        let ta = pa.generate(&mut a, 0, 60, 100);
        let tb = pb.generate(&mut b, 0, 60, 100);
        assert_eq!(ta, tb);
    }

    #[test]
    fn works_at_native_rates() {
        let (p, mut rng) = profile();
        for interval in [1u32, 6, 8] {
            let ts = p.generate(&mut rng, 0, interval, 1000);
            assert_eq!(ts.len(), 1000);
            assert!(ts.values().iter().all(|v| v.is_finite()));
        }
    }
}
