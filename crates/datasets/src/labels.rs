//! Label derivation: the heart of the weak-supervision setting.
//!
//! §II-A of the paper: *"For the IDEAL dataset, we assign to each
//! subsequence the label of possession of the appliance provided in the
//! survey questionnaire. For the two other datasets (UKDALE and REFIT), we
//! use the corresponding disaggregated appliance load curve to assign to
//! each sub-sequence a positive or negative label […] only this label is
//! used for training."*
//!
//! This module extracts exactly those training examples from simulated
//! houses: gap-free aggregate subsequences paired with
//!
//! - a **weak label** (one bit per window — all CamAL ever trains on), and
//! - the **strong labels** (per-timestep status), carried along solely for
//!   the strong-label baselines and for evaluation.
//!
//! It also accounts for *label counts*, the currency of Figure 3: a weak
//! method consumes 1 label per window; a seq2seq method consumes
//! `window_len` labels per window.

use crate::appliance::ApplianceKind;
use crate::dataset::Dataset;
use crate::house::House;
use ds_timeseries::window::subsequences_complete;
use serde::{Deserialize, Serialize};

/// Where a window's weak label came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeakLabel {
    /// Household possession survey (IDEAL style): every window of a house
    /// carries the house's possession bit.
    Possession,
    /// Disaggregated-channel activation (UK-DALE / REFIT style): a window is
    /// positive iff the appliance was ON at some timestep inside it.
    WindowActivation,
}

/// One training/evaluation example.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledWindow {
    /// House the window came from.
    pub house_id: u32,
    /// Unix timestamp of the window start.
    pub start: i64,
    /// Aggregate power values (gap-free, watts).
    pub values: Vec<f32>,
    /// The weak (window-level) label: appliance present?
    pub weak: bool,
    /// Ground-truth per-timestep status (evaluation / strong baselines only).
    pub strong: Vec<u8>,
}

impl LabeledWindow {
    /// Number of timesteps.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of ON timesteps in the ground truth.
    pub fn on_count(&self) -> usize {
        self.strong.iter().filter(|&&s| s == 1).count()
    }
}

/// Extract labeled windows for one appliance from one house.
///
/// Windows are gap-free aggregate subsequences of `window_samples` values
/// taken every `stride` samples. The strong labels are sliced from the
/// house's ground-truth status; the weak label follows `mode`.
pub fn labeled_windows(
    house: &House,
    kind: ApplianceKind,
    mode: WeakLabel,
    window_samples: usize,
    stride: usize,
) -> Vec<LabeledWindow> {
    let status = house.status(kind);
    // Ground truth from simulated channels is complete (never Unknown), so
    // the binary view is lossless; compute it once for all windows.
    let binary = status.as_binary();
    let possession = house.possesses(kind);
    subsequences_complete(house.aggregate(), window_samples, stride)
        .expect("window parameters validated by caller")
        .into_iter()
        .map(|w| {
            let lo = house
                .aggregate()
                .index_of(w.start())
                .expect("window start lies inside the aggregate");
            let strong = binary[lo..lo + window_samples].to_vec();
            let weak = match mode {
                WeakLabel::Possession => possession,
                WeakLabel::WindowActivation => strong.contains(&1),
            };
            LabeledWindow {
                house_id: house.id(),
                start: w.start(),
                values: w.into_values(),
                weak,
                strong,
            }
        })
        .collect()
}

/// A train/test corpus of labeled windows for one (dataset, appliance) pair.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Appliance the corpus targets.
    pub kind: ApplianceKind,
    /// Weak-label mode the dataset uses.
    pub mode: WeakLabel,
    /// Window length in samples.
    pub window_samples: usize,
    /// Training windows (from train houses only).
    pub train: Vec<LabeledWindow>,
    /// Test windows (from test houses only).
    pub test: Vec<LabeledWindow>,
}

impl Corpus {
    /// Build the corpus for `kind` from a dataset, using the dataset's
    /// label style (possession for IDEAL-like, activation otherwise) and
    /// non-overlapping windows.
    pub fn build(dataset: &Dataset, kind: ApplianceKind, window_samples: usize) -> Corpus {
        let mode = if dataset.preset().uses_possession_labels() {
            WeakLabel::Possession
        } else {
            WeakLabel::WindowActivation
        };
        let collect = |houses: &[House]| {
            houses
                .iter()
                .flat_map(|h| labeled_windows(h, kind, mode, window_samples, window_samples))
                .collect::<Vec<_>>()
        };
        Corpus {
            kind,
            mode,
            window_samples,
            train: collect(dataset.train_houses()),
            test: collect(dataset.test_houses()),
        }
    }

    /// Count of positive training windows.
    pub fn train_positives(&self) -> usize {
        self.train.iter().filter(|w| w.weak).count()
    }

    /// Balance the training set: keep all positives and at most
    /// `ratio` negatives per positive (deterministic decimation, no RNG).
    pub fn balance_train(&mut self, ratio: usize) {
        let positives = self.train_positives();
        let max_neg = positives.saturating_mul(ratio.max(1)).max(1);
        let mut kept = Vec::with_capacity(self.train.len().min(positives + max_neg));
        let negatives: Vec<usize> = self
            .train
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.weak)
            .map(|(i, _)| i)
            .collect();
        let keep_every = (negatives.len() / max_neg.max(1)).max(1);
        let keep_neg: std::collections::BTreeSet<usize> = negatives
            .iter()
            .step_by(keep_every)
            .take(max_neg)
            .copied()
            .collect();
        for (i, w) in self.train.drain(..).enumerate() {
            if w.weak || keep_neg.contains(&i) {
                kept.push(w);
            }
        }
        self.train = kept;
    }

    /// Truncate the training set to the first `n` windows (label-budget
    /// sweeps); keeps the positive/negative interleaving intact.
    pub fn truncate_train(&mut self, n: usize) {
        self.train.truncate(n);
    }

    /// Weak-label consumption of this training set: one label per window.
    pub fn weak_label_count(&self) -> usize {
        self.train.len()
    }

    /// Strong-label consumption: one label per timestep per window — what a
    /// seq2seq NILM method must be given to train on the same corpus.
    pub fn strong_label_count(&self) -> usize {
        self.train.len() * self.window_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, DatasetPreset};
    use crate::house::HouseConfig;
    use crate::noise::NoiseModel;

    fn house(appliances: Vec<ApplianceKind>, days: u32) -> House {
        House::simulate(
            HouseConfig {
                house_id: 7,
                start: 0,
                days,
                interval_secs: 60,
                appliances,
                usage_scale: 1.2,
                noise: NoiseModel::none(),
            },
            21,
        )
    }

    #[test]
    fn activation_labels_match_ground_truth() {
        let h = house(vec![ApplianceKind::Kettle], 4);
        let ws = labeled_windows(
            &h,
            ApplianceKind::Kettle,
            WeakLabel::WindowActivation,
            360,
            360,
        );
        assert_eq!(ws.len(), 4 * 4); // 4 days of 6-hour windows
        for w in &ws {
            assert_eq!(w.weak, w.strong.contains(&1));
            assert_eq!(w.len(), 360);
            assert_eq!(w.house_id, 7);
        }
        // A kettle used ~4x/day: both positive and negative windows exist.
        assert!(ws.iter().any(|w| w.weak));
        assert!(ws.iter().any(|w| !w.weak));
    }

    #[test]
    fn possession_labels_are_constant_per_house() {
        let h = house(vec![ApplianceKind::Kettle], 2);
        let ws = labeled_windows(&h, ApplianceKind::Kettle, WeakLabel::Possession, 360, 360);
        assert!(ws.iter().all(|w| w.weak));
        let ws = labeled_windows(&h, ApplianceKind::Shower, WeakLabel::Possession, 360, 360);
        assert!(ws.iter().all(|w| !w.weak));
        // Strong labels of a non-possessed appliance are all zero.
        assert!(ws.iter().all(|w| w.on_count() == 0));
    }

    #[test]
    fn corpus_split_uses_distinct_houses() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::RefitLike, 6, 2));
        let corpus = Corpus::build(&ds, ApplianceKind::Kettle, 360);
        assert_eq!(corpus.mode, WeakLabel::WindowActivation);
        let train_ids: std::collections::BTreeSet<u32> =
            corpus.train.iter().map(|w| w.house_id).collect();
        let test_ids: std::collections::BTreeSet<u32> =
            corpus.test.iter().map(|w| w.house_id).collect();
        assert!(train_ids.is_disjoint(&test_ids));
        assert!(!corpus.train.is_empty());
        assert!(!corpus.test.is_empty());
    }

    #[test]
    fn ideal_corpus_uses_possession() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::IdealLike, 6, 1));
        let corpus = Corpus::build(&ds, ApplianceKind::Dishwasher, 360);
        assert_eq!(corpus.mode, WeakLabel::Possession);
    }

    #[test]
    fn label_accounting() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let corpus = Corpus::build(&ds, ApplianceKind::Kettle, 360);
        assert_eq!(corpus.weak_label_count(), corpus.train.len());
        assert_eq!(corpus.strong_label_count(), corpus.train.len() * 360);
        assert_eq!(corpus.strong_label_count() / corpus.weak_label_count(), 360);
    }

    #[test]
    fn balance_caps_negatives() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::RefitLike, 6, 3));
        let mut corpus = Corpus::build(&ds, ApplianceKind::Dishwasher, 360);
        let pos_before = corpus.train_positives();
        corpus.balance_train(1);
        let pos_after = corpus.train_positives();
        let neg_after = corpus.train.len() - pos_after;
        assert_eq!(pos_before, pos_after, "balance must keep all positives");
        assert!(
            neg_after <= pos_after.max(1),
            "negatives {neg_after} > positives {pos_after}"
        );
    }

    #[test]
    fn truncate_limits_label_budget() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut corpus = Corpus::build(&ds, ApplianceKind::Kettle, 360);
        corpus.truncate_train(3);
        assert_eq!(corpus.weak_label_count(), 3);
        assert_eq!(corpus.strong_label_count(), 3 * 360);
    }

    #[test]
    fn windows_skip_dropouts() {
        let noisy = House::simulate(
            HouseConfig {
                house_id: 1,
                start: 0,
                days: 3,
                interval_secs: 60,
                appliances: vec![ApplianceKind::Kettle],
                usage_scale: 1.0,
                noise: NoiseModel {
                    sigma_w: 5.0,
                    dropout_start_prob: 0.01,
                    dropout_mean_len: 10.0,
                    quantize_w: 0.0,
                },
            },
            3,
        );
        let ws = labeled_windows(
            &noisy,
            ApplianceKind::Kettle,
            WeakLabel::WindowActivation,
            360,
            360,
        );
        assert!(ws.len() < 3 * 4, "gappy windows must be omitted");
        for w in &ws {
            assert!(w.values.iter().all(|v| !v.is_nan()));
        }
    }
}
