//! The household simulator: composes base load, appliance activations and
//! the measurement model into one house's recording — an aggregate mains
//! channel plus submetered per-appliance channels and ground-truth status.
//!
//! Invariant (tested): before noise, the aggregate equals base load plus the
//! sum of appliance channels at every timestep. The noisy aggregate is what
//! models see; the clean channels play the role of the real datasets'
//! submeter recordings, used only for evaluation and label derivation.

use crate::appliance::ApplianceKind;
use crate::baseload::BaseloadProfile;
use crate::noise::NoiseModel;
use crate::occupancy::{schedule, Activation};
use ds_timeseries::{StatusSeries, TimeSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Static description of a house to simulate.
#[derive(Debug, Clone, PartialEq)]
pub struct HouseConfig {
    /// Identifier within its dataset.
    pub house_id: u32,
    /// Unix timestamp of the first sample.
    pub start: i64,
    /// Number of simulated days.
    pub days: u32,
    /// Sampling interval of the recording in seconds.
    pub interval_secs: u32,
    /// Appliances the household possesses.
    pub appliances: Vec<ApplianceKind>,
    /// Multiplier on every appliance's mean daily activation rate.
    pub usage_scale: f32,
    /// Measurement model applied to the aggregate channel.
    pub noise: NoiseModel,
}

impl HouseConfig {
    /// Number of samples implied by `days` and `interval_secs`.
    pub fn num_samples(&self) -> usize {
        (self.days as u64 * 86_400 / self.interval_secs.max(1) as u64) as usize
    }
}

/// Minimum spacing between successive activations of one appliance, chosen
/// above the maximum cycle duration so an appliance never overlaps itself.
fn min_gap_secs(kind: ApplianceKind) -> i64 {
    match kind {
        ApplianceKind::Kettle => 15 * 60,
        ApplianceKind::Microwave => 20 * 60,
        ApplianceKind::Dishwasher => 4 * 3600,
        ApplianceKind::WashingMachine => 4 * 3600,
        ApplianceKind::Shower => 40 * 60,
    }
}

/// A fully simulated household recording.
#[derive(Debug, Clone)]
pub struct House {
    id: u32,
    config: HouseConfig,
    aggregate: TimeSeries,
    channels: BTreeMap<ApplianceKind, TimeSeries>,
    status: BTreeMap<ApplianceKind, StatusSeries>,
    activations: BTreeMap<ApplianceKind, Vec<Activation>>,
}

impl House {
    /// Simulate a house. Deterministic in `(config, seed)`.
    pub fn simulate(config: HouseConfig, seed: u64) -> House {
        let mut rng = StdRng::seed_from_u64(
            seed ^ (config.house_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let len = config.num_samples();
        let interval = config.interval_secs;
        let start = config.start;

        let baseload = BaseloadProfile::sample(&mut rng).generate(&mut rng, start, interval, len);
        let mut aggregate = baseload;

        let mut channels = BTreeMap::new();
        let mut status = BTreeMap::new();
        let mut activations = BTreeMap::new();
        for &kind in &config.appliances {
            let acts = schedule(
                &mut rng,
                kind,
                start,
                config.days,
                config.usage_scale,
                min_gap_secs(kind),
            );
            let channel = render_channel(&mut rng, kind, &acts, start, interval, len);
            aggregate
                .add_assign(&channel)
                .expect("channel is aligned by construction");
            status.insert(
                kind,
                StatusSeries::from_power(&channel, kind.on_threshold_w()),
            );
            channels.insert(kind, channel);
            activations.insert(kind, acts);
        }

        let aggregate = config.noise.apply(&mut rng, &aggregate);
        House {
            id: config.house_id,
            config,
            aggregate,
            channels,
            status,
            activations,
        }
    }

    /// House identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The configuration the house was simulated from.
    pub fn config(&self) -> &HouseConfig {
        &self.config
    }

    /// The (noisy) aggregate mains channel — what a smart meter records.
    pub fn aggregate(&self) -> &TimeSeries {
        &self.aggregate
    }

    /// Whether the household possesses `kind` — the paper's IDEAL-style
    /// *possession weak label*.
    pub fn possesses(&self, kind: ApplianceKind) -> bool {
        self.channels.contains_key(&kind)
    }

    /// The clean submetered channel of an appliance, if possessed.
    pub fn channel(&self, kind: ApplianceKind) -> Option<&TimeSeries> {
        self.channels.get(&kind)
    }

    /// Ground-truth on/off status of an appliance. For a non-possessed
    /// appliance this is an all-off status (the appliance is never on),
    /// which is exactly what evaluation needs.
    pub fn status(&self, kind: ApplianceKind) -> StatusSeries {
        self.status.get(&kind).cloned().unwrap_or_else(|| {
            StatusSeries::all_off(
                self.aggregate.start(),
                self.aggregate.interval_secs(),
                self.aggregate.len(),
            )
        })
    }

    /// Scheduled activations of an appliance (empty if not possessed).
    pub fn activations(&self, kind: ApplianceKind) -> &[Activation] {
        self.activations.get(&kind).map_or(&[], Vec::as_slice)
    }

    /// The appliances this house possesses, in stable order.
    pub fn appliances(&self) -> Vec<ApplianceKind> {
        self.channels.keys().copied().collect()
    }
}

/// Render an appliance channel by pasting activation profiles onto zeros.
fn render_channel(
    rng: &mut impl Rng,
    kind: ApplianceKind,
    activations: &[Activation],
    start: i64,
    interval_secs: u32,
    len: usize,
) -> TimeSeries {
    let mut channel = TimeSeries::zeros(start, interval_secs, len);
    for act in activations {
        let profile = kind.sample_activation(rng, interval_secs);
        let Some(idx) = channel.index_of(act.start) else {
            continue;
        };
        let values = channel.values_mut();
        for (k, &p) in profile.iter().enumerate() {
            let Some(slot) = values.get_mut(idx + k) else {
                break; // activation runs past the recording end
            };
            *slot += p;
        }
    }
    channel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(appliances: Vec<ApplianceKind>, noise: NoiseModel) -> HouseConfig {
        HouseConfig {
            house_id: 1,
            start: 0,
            days: 7,
            interval_secs: 60,
            appliances,
            usage_scale: 1.0,
            noise,
        }
    }

    #[test]
    fn sample_count_matches_config() {
        let c = config(vec![ApplianceKind::Kettle], NoiseModel::none());
        assert_eq!(c.num_samples(), 7 * 1440);
        let h = House::simulate(c, 1);
        assert_eq!(h.aggregate().len(), 7 * 1440);
    }

    #[test]
    fn power_balance_without_noise() {
        let c = config(
            vec![ApplianceKind::Kettle, ApplianceKind::Dishwasher],
            NoiseModel::none(),
        );
        let h = House::simulate(c, 7);
        // aggregate >= sum of channels everywhere (base load is nonnegative).
        let k = h.channel(ApplianceKind::Kettle).unwrap();
        let d = h.channel(ApplianceKind::Dishwasher).unwrap();
        for i in 0..h.aggregate().len() {
            let agg = h.aggregate().values()[i];
            let sum = k.values()[i] + d.values()[i];
            assert!(
                agg >= sum - 1e-3,
                "aggregate {agg} below channel sum {sum} at {i}"
            );
        }
    }

    #[test]
    fn possession_and_status() {
        let c = config(vec![ApplianceKind::Kettle], NoiseModel::none());
        let h = House::simulate(c, 3);
        assert!(h.possesses(ApplianceKind::Kettle));
        assert!(!h.possesses(ApplianceKind::Shower));
        assert!(h.channel(ApplianceKind::Shower).is_none());
        // Non-possessed appliance: all-off status of full length.
        let s = h.status(ApplianceKind::Shower);
        assert_eq!(s.len(), h.aggregate().len());
        assert!(!s.any_on());
        // Possessed kettle is used at least once a week with rate 4/day.
        let ks = h.status(ApplianceKind::Kettle);
        assert!(ks.any_on(), "kettle never on in a week");
        assert_eq!(h.appliances(), vec![ApplianceKind::Kettle]);
    }

    #[test]
    fn status_matches_channel_threshold() {
        let c = config(vec![ApplianceKind::Microwave], NoiseModel::none());
        let h = House::simulate(c, 5);
        let ch = h.channel(ApplianceKind::Microwave).unwrap();
        let st = h.status(ApplianceKind::Microwave);
        for (v, s) in ch.values().iter().zip(st.states()) {
            assert_eq!(s.is_on(), *v > ApplianceKind::Microwave.on_threshold_w());
        }
    }

    #[test]
    fn activations_visible_in_aggregate() {
        let c = config(vec![ApplianceKind::Shower], NoiseModel::none());
        let h = House::simulate(c, 7);
        let acts = h.activations(ApplianceKind::Shower);
        assert!(!acts.is_empty());
        for act in acts {
            let idx = h.aggregate().index_of(act.start).unwrap();
            // Within the next few samples the aggregate must jump above 6 kW.
            let peak = h.aggregate().values()[idx..(idx + 5).min(h.aggregate().len())]
                .iter()
                .cloned()
                .fold(0.0f32, f32::max);
            assert!(
                peak > 6000.0,
                "shower activation invisible at {idx}: {peak}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = config(vec![ApplianceKind::Kettle], NoiseModel::none());
        let a = House::simulate(c.clone(), 99);
        let b = House::simulate(c, 99);
        assert_eq!(a.aggregate(), b.aggregate());
        let c2 = config(vec![ApplianceKind::Kettle], NoiseModel::none());
        let d = House::simulate(c2, 100);
        assert_ne!(a.aggregate(), d.aggregate());
    }

    #[test]
    fn noise_injects_missing_data() {
        let noise = NoiseModel {
            sigma_w: 10.0,
            dropout_start_prob: 0.005,
            dropout_mean_len: 5.0,
            quantize_w: 1.0,
        };
        let h = House::simulate(config(vec![ApplianceKind::Kettle], noise), 11);
        assert!(h.aggregate().has_missing());
        // Channels stay clean (they model submeter ground truth).
        assert!(!h.channel(ApplianceKind::Kettle).unwrap().has_missing());
    }

    #[test]
    fn activation_at_recording_end_is_truncated() {
        // 1-day recording, dishwasher scheduled late may overrun; must not panic.
        let c = HouseConfig {
            house_id: 3,
            start: 0,
            days: 1,
            interval_secs: 60,
            appliances: vec![ApplianceKind::Dishwasher],
            usage_scale: 3.0,
            noise: NoiseModel::none(),
        };
        let h = House::simulate(c, 5);
        assert_eq!(h.aggregate().len(), 1440);
    }
}
