//! The dataset catalog: the app-facing registry of generated datasets.
//!
//! DeviceScope's sidebar offers a dataset select box; behind it sits this
//! catalog, which lazily generates and caches each preset so switching
//! datasets in the app (or in the benchmark harness) does not re-simulate.

use crate::dataset::{Dataset, DatasetConfig, DatasetPreset};
use std::collections::BTreeMap;

/// Lazily generated collection of datasets, keyed by preset.
#[derive(Debug, Default)]
pub struct Catalog {
    /// Override configurations (falls back to each preset's default).
    overrides: BTreeMap<&'static str, DatasetConfig>,
    cache: BTreeMap<&'static str, Dataset>,
}

impl Catalog {
    /// A catalog that generates every preset with its default configuration.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// A catalog with shrunken datasets (for tests and quick demos).
    pub fn tiny(num_houses: u32, days: u32) -> Catalog {
        let mut overrides = BTreeMap::new();
        for preset in DatasetPreset::ALL {
            overrides.insert(preset.name(), DatasetConfig::tiny(preset, num_houses, days));
        }
        Catalog {
            overrides,
            cache: BTreeMap::new(),
        }
    }

    /// Set the configuration used for one preset (drops any cached copy).
    pub fn configure(&mut self, config: DatasetConfig) {
        let key = config.preset.name();
        self.cache.remove(key);
        self.overrides.insert(key, config);
    }

    /// Names of the available datasets, in display order.
    pub fn names(&self) -> Vec<&'static str> {
        DatasetPreset::ALL.iter().map(|p| p.name()).collect()
    }

    /// Get (generating and caching on first access) a dataset by preset.
    pub fn get(&mut self, preset: DatasetPreset) -> &Dataset {
        let key = preset.name();
        if !self.cache.contains_key(key) {
            let config = self
                .overrides
                .get(key)
                .cloned()
                .unwrap_or_else(|| preset.config());
            self.cache.insert(key, Dataset::generate(config));
        }
        self.cache.get(key).expect("inserted above")
    }

    /// Get a dataset by display name (as shown in the app's select box).
    pub fn get_by_name(&mut self, name: &str) -> Option<&Dataset> {
        let preset = DatasetPreset::parse(name)?;
        Some(self.get(preset))
    }

    /// Whether a preset has already been generated.
    pub fn is_cached(&self, preset: DatasetPreset) -> bool {
        self.cache.contains_key(preset.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_generation_and_caching() {
        let mut cat = Catalog::tiny(3, 1);
        assert!(!cat.is_cached(DatasetPreset::UkdaleLike));
        let n = cat.get(DatasetPreset::UkdaleLike).houses().len();
        assert_eq!(n, 3);
        assert!(cat.is_cached(DatasetPreset::UkdaleLike));
        assert!(!cat.is_cached(DatasetPreset::RefitLike));
        // Second access returns the cached dataset (same houses).
        let a0 = cat.get(DatasetPreset::UkdaleLike).houses()[0]
            .aggregate()
            .clone();
        let b0 = cat.get(DatasetPreset::UkdaleLike).houses()[0]
            .aggregate()
            .clone();
        assert!(a0.same_as(&b0, 0.0)); // NaN-aware: dropouts defeat `==`
    }

    #[test]
    fn same_as_distinguishes_content() {
        let mut cat = Catalog::tiny(2, 1);
        let a = cat.get(DatasetPreset::UkdaleLike).houses()[0]
            .aggregate()
            .clone();
        let b = cat.get(DatasetPreset::UkdaleLike).houses()[1]
            .aggregate()
            .clone();
        assert!(!a.same_as(&b, 0.0));
    }

    #[test]
    fn lookup_by_name() {
        let mut cat = Catalog::tiny(2, 1);
        assert!(cat.get_by_name("REFIT").is_some());
        assert!(cat.get_by_name("ideal").is_some());
        assert!(cat.get_by_name("unknown").is_none());
        assert_eq!(cat.names(), vec!["UKDALE", "REFIT", "IDEAL"]);
    }

    #[test]
    fn configure_overrides_and_invalidates() {
        let mut cat = Catalog::tiny(2, 1);
        let _ = cat.get(DatasetPreset::IdealLike);
        assert!(cat.is_cached(DatasetPreset::IdealLike));
        cat.configure(DatasetConfig::tiny(DatasetPreset::IdealLike, 4, 1));
        assert!(!cat.is_cached(DatasetPreset::IdealLike));
        assert_eq!(cat.get(DatasetPreset::IdealLike).houses().len(), 4);
    }
}
