//! Dataset statistics: the summary a paper's "datasets" table reports and
//! the app's sidebar shows — house counts, possession rates, activation
//! counts, duty cycles and energy shares per appliance.

use crate::appliance::ApplianceKind;
use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Per-appliance statistics over a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplianceStats {
    /// Appliance display name.
    pub appliance: String,
    /// Houses possessing the appliance.
    pub possessing_houses: usize,
    /// Total scheduled activations over all possessing houses.
    pub activations: usize,
    /// Mean ON duty cycle over possessing houses, in `[0, 1]`.
    pub mean_duty_cycle: f64,
    /// Share of total appliance energy (excl. base load), in `[0, 1]`.
    pub energy_share: f64,
}

/// Dataset-level summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Preset display name.
    pub dataset: String,
    /// Number of houses.
    pub houses: usize,
    /// Recording days per house.
    pub days: u32,
    /// Sampling interval, seconds.
    pub interval_secs: u32,
    /// Mean missing-data ratio of the aggregate channels.
    pub mean_missing_ratio: f64,
    /// Per-appliance rows, in canonical order.
    pub appliances: Vec<ApplianceStats>,
}

/// Compute the summary of a generated dataset.
pub fn summarize(dataset: &Dataset) -> DatasetStats {
    let houses = dataset.houses();
    let mean_missing = houses
        .iter()
        .map(|h| h.aggregate().missing_ratio() as f64)
        .sum::<f64>()
        / houses.len().max(1) as f64;

    let mut per_appliance = Vec::new();
    let mut energies = Vec::new();
    for kind in ApplianceKind::ALL {
        let possessing: Vec<_> = houses.iter().filter(|h| h.possesses(kind)).collect();
        let activations: usize = possessing.iter().map(|h| h.activations(kind).len()).sum();
        let mean_duty = if possessing.is_empty() {
            0.0
        } else {
            possessing
                .iter()
                .map(|h| h.status(kind).duty_cycle() as f64)
                .sum::<f64>()
                / possessing.len() as f64
        };
        let energy: f64 = possessing
            .iter()
            .filter_map(|h| h.channel(kind))
            .map(|ch| ch.energy_wh())
            .sum();
        energies.push(energy);
        per_appliance.push(ApplianceStats {
            appliance: kind.name().to_string(),
            possessing_houses: possessing.len(),
            activations,
            mean_duty_cycle: mean_duty,
            energy_share: 0.0, // filled below
        });
    }
    let total_energy: f64 = energies.iter().sum();
    if total_energy > 0.0 {
        for (row, e) in per_appliance.iter_mut().zip(&energies) {
            row.energy_share = e / total_energy;
        }
    }

    DatasetStats {
        dataset: dataset.preset().name().to_string(),
        houses: houses.len(),
        days: dataset.config().days,
        interval_secs: dataset.config().sim_interval_secs,
        mean_missing_ratio: mean_missing,
        appliances: per_appliance,
    }
}

/// Render the summary as text (the app's dataset info panel).
pub fn render(stats: &DatasetStats) -> String {
    let mut out = format!(
        "{}: {} houses × {} days at {}s sampling ({:.2}% readings missing)\n",
        stats.dataset,
        stats.houses,
        stats.days,
        stats.interval_secs,
        stats.mean_missing_ratio * 100.0
    );
    for a in &stats.appliances {
        out.push_str(&format!(
            "  {:<16} owned by {:>2} houses, {:>4} activations, duty {:>5.2}%, {:>4.1}% of appliance energy\n",
            a.appliance,
            a.possessing_houses,
            a.activations,
            a.mean_duty_cycle * 100.0,
            a.energy_share * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, DatasetPreset};

    #[test]
    fn summary_is_consistent() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::RefitLike, 5, 3));
        let stats = summarize(&ds);
        assert_eq!(stats.dataset, "REFIT");
        assert_eq!(stats.houses, 5);
        assert_eq!(stats.days, 3);
        assert_eq!(stats.appliances.len(), 5);
        // Energy shares sum to 1 (every preset has at least one appliance).
        let share_sum: f64 = stats.appliances.iter().map(|a| a.energy_share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
        for a in &stats.appliances {
            assert!((0.0..=1.0).contains(&a.mean_duty_cycle));
            assert!(a.possessing_houses <= 5);
            // Coverage guarantee: at least one possessing house everywhere.
            assert!(a.possessing_houses >= 1, "{} unowned", a.appliance);
        }
        // Showers are short: duty cycle below dishwashers'.
        let duty = |name: &str| {
            stats
                .appliances
                .iter()
                .find(|a| a.appliance == name)
                .unwrap()
                .mean_duty_cycle
        };
        assert!(duty("Shower") < duty("Dishwasher"));
    }

    #[test]
    fn render_mentions_every_appliance() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::IdealLike, 3, 1));
        let out = render(&summarize(&ds));
        for kind in ApplianceKind::ALL {
            assert!(out.contains(kind.name()));
        }
        assert!(out.contains("IDEAL"));
    }
}
