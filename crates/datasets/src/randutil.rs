//! Small random-sampling helpers on top of the `rand` core traits.
//!
//! We deliberately avoid `rand_distr` (not in the approved dependency set):
//! the simulator only needs normal deviates (Box–Muller), Poisson counts
//! (Knuth's method, small means) and a few convenience draws.

use rand::Rng;

/// A standard normal deviate via the Box–Muller transform.
pub fn normal(rng: &mut impl Rng, mean: f32, std: f32) -> f32 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
    mean + std * z
}

/// A Poisson count with small mean via Knuth's multiplication method.
/// For `lambda <= 0` returns 0. Means used by the simulator are < 20.
pub fn poisson(rng: &mut impl Rng, lambda: f32) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f32;
    loop {
        p *= rng.gen::<f32>();
        if p <= l {
            return k;
        }
        k += 1;
        // Guard against pathological lambda: cap at a generous bound.
        if k > 10_000 {
            return k;
        }
    }
}

/// Uniform draw in `[lo, hi)`; tolerates `lo == hi` (returns `lo`).
pub fn uniform(rng: &mut impl Rng, lo: f32, hi: f32) -> f32 {
    if hi > lo {
        rng.gen_range(lo..hi)
    } else {
        lo
    }
}

/// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
pub fn coin(rng: &mut impl Rng, p: f32) -> bool {
    let p = p.clamp(0.0, 1.0);
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.gen::<f32>() < p
    }
}

/// Sample an index from unnormalized non-negative weights.
/// Falls back to the last index on floating-point shortfall; returns 0 for
/// all-zero weights.
pub fn weighted_index(rng: &mut impl Rng, weights: &[f32]) -> usize {
    let total: f32 = weights.iter().copied().filter(|w| *w > 0.0).sum();
    if total <= 0.0 || weights.is_empty() {
        return 0;
    }
    let mut draw = rng.gen::<f32>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if draw < w {
            return i;
        }
        draw -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let draws: Vec<f32> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean: f32 = draws.iter().sum::<f32>() / n as f32;
        let var: f32 = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f32>() / n as f32;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let lambda = 3.5;
        let mean: f32 = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f32)
            .sum::<f32>()
            / n as f32;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn uniform_handles_degenerate_range() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(uniform(&mut rng, 2.0, 2.0), 2.0);
        for _ in 0..100 {
            let v = uniform(&mut rng, 1.0, 4.0);
            assert!((1.0..4.0).contains(&v));
        }
    }

    #[test]
    fn coin_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!coin(&mut rng, 0.0));
        assert!(coin(&mut rng, 1.0));
        assert!(coin(&mut rng, 2.0));
        assert!(!coin(&mut rng, -1.0));
        let heads = (0..10_000).filter(|_| coin(&mut rng, 0.3)).count();
        assert!((heads as f32 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f32 / counts[1] as f32;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
        assert_eq!(weighted_index(&mut rng, &[]), 0);
        assert_eq!(weighted_index(&mut rng, &[0.0, 0.0]), 0);
    }
}
