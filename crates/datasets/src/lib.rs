//! # ds-datasets
//!
//! Synthetic smart-meter dataset substrate for the DeviceScope / CamAL
//! reproduction.
//!
//! The paper evaluates on three public recordings — **UK-DALE** (5 UK homes,
//! 6 s mains), **REFIT** (20 UK homes, 8 s), and **IDEAL** (255 UK homes,
//! survey-based appliance possession) — none of which can ship with this
//! repository. Per the reproduction's substitution rule (see `DESIGN.md`),
//! this crate implements the closest synthetic equivalent: a physically
//! grounded household electricity simulator producing
//!
//! - an **aggregate** mains power series (what the smart meter records),
//! - per-appliance **submetered** channels (used *only* for evaluation and
//!   for deriving labels, exactly like the real datasets), and
//! - per-appliance ground-truth **on/off status** series.
//!
//! The five target appliances are those of the paper: [`ApplianceKind::Kettle`],
//! [`ApplianceKind::Microwave`], [`ApplianceKind::Dishwasher`],
//! [`ApplianceKind::WashingMachine`] and [`ApplianceKind::Shower`]. Their
//! signature models (power level, duration, internal cycle structure) follow
//! the published characteristics of UK domestic appliances, so the relative
//! detection/localization difficulty ordering of the paper is preserved:
//! high-power short events (kettle, shower) are easy; long multi-phase
//! cycles overlapping the base load (dishwasher, washing machine) are hard.
//!
//! Three [`DatasetPreset`]s mimic the structure of the real datasets (house
//! counts scaled to laptop budgets, native sampling rates, possession
//! statistics, missing-data rates). Houses are deterministic functions of
//! `(preset, house_id, seed)`, so train/test splits are reproducible and
//! train and test houses are always distinct, as the paper requires.

pub mod appliance;
pub mod baseload;
pub mod catalog;
pub mod dataset;
pub mod house;
pub mod labels;
pub mod noise;
pub mod occupancy;
pub mod randutil;
pub mod stats;

pub use appliance::ApplianceKind;
pub use catalog::Catalog;
pub use dataset::{Dataset, DatasetConfig, DatasetPreset};
pub use house::{House, HouseConfig};
pub use labels::{LabeledWindow, WeakLabel};
