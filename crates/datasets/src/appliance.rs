//! Appliance signature models.
//!
//! Each of the paper's five target appliances gets a stochastic signature
//! generator producing the power profile of a single *activation* (one
//! kettle boil, one dishwasher cycle, …) at a given sampling interval.
//! Power levels and durations follow the published characteristics of UK
//! domestic appliances as recorded in UK-DALE / REFIT / IDEAL:
//!
//! | Appliance       | Power        | Duration   | Structure                |
//! |-----------------|--------------|------------|--------------------------|
//! | Kettle          | 2.5–3 kW     | 2–5 min    | flat plateau             |
//! | Microwave       | 1.0–1.5 kW   | 1–8 min    | magnetron duty pulses    |
//! | Dishwasher      | 0.1–2.4 kW   | 70–130 min | heat/wash/heat/rinse/dry |
//! | Washing machine | 0.15–2.2 kW  | 60–120 min | heat + drum + spin       |
//! | Shower          | 7–9.5 kW     | 4–12 min   | flat plateau             |
//!
//! These shapes are what make the paper's difficulty ordering hold: kettle
//! and shower are trivially separable spikes, while dishwasher and washing
//! machine are long, structured, and overlap the base load in power.

use crate::randutil::{normal, uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The five appliances DeviceScope detects and localizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ApplianceKind {
    /// Electric kettle: short, high, flat plateau.
    Kettle,
    /// Microwave oven: short pulse train at medium power.
    Microwave,
    /// Dishwasher: long multi-phase cycle with two heating plateaus.
    Dishwasher,
    /// Washing machine: long cycle with heating, drum agitation and spins.
    WashingMachine,
    /// Electric instantaneous shower: very high flat plateau.
    Shower,
}

impl ApplianceKind {
    /// All five appliances in a stable order.
    pub const ALL: [ApplianceKind; 5] = [
        ApplianceKind::Kettle,
        ApplianceKind::Microwave,
        ApplianceKind::Dishwasher,
        ApplianceKind::WashingMachine,
        ApplianceKind::Shower,
    ];

    /// Human-readable name used by the app and reports.
    pub fn name(self) -> &'static str {
        match self {
            ApplianceKind::Kettle => "Kettle",
            ApplianceKind::Microwave => "Microwave",
            ApplianceKind::Dishwasher => "Dishwasher",
            ApplianceKind::WashingMachine => "Washing Machine",
            ApplianceKind::Shower => "Shower",
        }
    }

    /// Short machine-friendly identifier (stable across releases).
    pub fn slug(self) -> &'static str {
        match self {
            ApplianceKind::Kettle => "kettle",
            ApplianceKind::Microwave => "microwave",
            ApplianceKind::Dishwasher => "dishwasher",
            ApplianceKind::WashingMachine => "washing_machine",
            ApplianceKind::Shower => "shower",
        }
    }

    /// Parse a slug or name (case-insensitive).
    pub fn parse(s: &str) -> Option<ApplianceKind> {
        let lower = s.trim().to_ascii_lowercase();
        ApplianceKind::ALL
            .into_iter()
            .find(|k| k.slug() == lower || k.name().to_ascii_lowercase() == lower)
    }

    /// Power threshold (watts) above which the appliance counts as ON when
    /// deriving ground-truth status from its submetered channel. Mirrors the
    /// per-appliance thresholds used throughout the NILM literature.
    pub fn on_threshold_w(self) -> f32 {
        match self {
            ApplianceKind::Kettle => 100.0,
            ApplianceKind::Microwave => 100.0,
            ApplianceKind::Dishwasher => 30.0,
            ApplianceKind::WashingMachine => 30.0,
            ApplianceKind::Shower => 500.0,
        }
    }

    /// Typical peak power in watts (midpoint of the signature range); used
    /// by the app's pattern-example expander and by feature scaling.
    pub fn typical_peak_w(self) -> f32 {
        match self {
            ApplianceKind::Kettle => 2800.0,
            ApplianceKind::Microwave => 1250.0,
            ApplianceKind::Dishwasher => 2200.0,
            ApplianceKind::WashingMachine => 2000.0,
            ApplianceKind::Shower => 8500.0,
        }
    }

    /// Mean activations per day in an owning household (drives the
    /// occupancy scheduler; values follow usage surveys).
    pub fn mean_daily_activations(self) -> f32 {
        match self {
            ApplianceKind::Kettle => 4.0,
            ApplianceKind::Microwave => 2.0,
            ApplianceKind::Dishwasher => 0.7,
            ApplianceKind::WashingMachine => 0.5,
            ApplianceKind::Shower => 1.5,
        }
    }

    /// Sample the power profile (watts per sample) of one activation.
    ///
    /// The profile length depends on the drawn duration and the sampling
    /// interval; it is always at least one sample.
    pub fn sample_activation(self, rng: &mut impl Rng, interval_secs: u32) -> Vec<f32> {
        let profile_secs = match self {
            ApplianceKind::Kettle => kettle(rng),
            ApplianceKind::Microwave => microwave(rng),
            ApplianceKind::Dishwasher => dishwasher(rng),
            ApplianceKind::WashingMachine => washing_machine(rng),
            ApplianceKind::Shower => shower(rng),
        };
        bucket_to_interval(&profile_secs, interval_secs)
    }
}

impl std::fmt::Display for ApplianceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Average a per-second profile into samples of `interval_secs`.
/// A trailing partial bucket is kept (averaged over its actual length) so
/// short events are never lost entirely.
fn bucket_to_interval(per_second: &[f32], interval_secs: u32) -> Vec<f32> {
    let step = interval_secs.max(1) as usize;
    if step == 1 {
        return per_second.to_vec();
    }
    let mut out = Vec::with_capacity(per_second.len() / step + 1);
    for chunk in per_second.chunks(step) {
        let mean = chunk.iter().sum::<f32>() / chunk.len() as f32;
        out.push(mean);
    }
    if out.is_empty() {
        out.push(0.0);
    }
    out
}

fn plateau(out: &mut Vec<f32>, secs: usize, power: f32, rng: &mut impl Rng, jitter: f32) {
    for _ in 0..secs {
        out.push((power + normal(rng, 0.0, jitter)).max(0.0));
    }
}

/// Kettle: a single flat plateau, 2–5 minutes, 2.5–3 kW, small thermal sag.
fn kettle(rng: &mut impl Rng) -> Vec<f32> {
    let power = uniform(rng, 2500.0, 3000.0);
    let secs = uniform(rng, 120.0, 300.0) as usize;
    let mut out = Vec::with_capacity(secs);
    for i in 0..secs {
        // Slight downward sag as the element heats (resistance rises).
        let sag = 1.0 - 0.03 * (i as f32 / secs as f32);
        out.push((power * sag + normal(rng, 0.0, 15.0)).max(0.0));
    }
    out
}

/// Microwave: magnetron duty cycling — bursts of full power separated by
/// short fan-only gaps, total 1–8 minutes.
fn microwave(rng: &mut impl Rng) -> Vec<f32> {
    let power = uniform(rng, 1000.0, 1500.0);
    let fan = uniform(rng, 60.0, 120.0);
    let total_secs = uniform(rng, 60.0, 480.0) as usize;
    let duty = uniform(rng, 0.55, 1.0); // defrost programmes cycle harder
    let burst = uniform(rng, 15.0, 30.0) as usize;
    let mut out = Vec::with_capacity(total_secs);
    let mut t = 0usize;
    while t < total_secs {
        let on_len = burst.min(total_secs - t);
        plateau(&mut out, on_len, power, rng, 20.0);
        t += on_len;
        if t >= total_secs {
            break;
        }
        if duty < 0.999 {
            let off_len = ((burst as f32) * (1.0 - duty) / duty).round() as usize;
            let off_len = off_len.min(total_secs - t);
            plateau(&mut out, off_len, fan, rng, 5.0);
            t += off_len;
        }
    }
    out
}

/// Dishwasher: pre-wash, heated main wash, wash agitation, heated rinse,
/// rinse, dry — 70–130 minutes total, two prominent 2 kW heating plateaus.
fn dishwasher(rng: &mut impl Rng) -> Vec<f32> {
    let heat = uniform(rng, 1900.0, 2400.0);
    let motor = uniform(rng, 110.0, 250.0);
    let dry = uniform(rng, 550.0, 800.0);
    let mut out = Vec::new();
    // Pre-wash (motor only).
    plateau(
        &mut out,
        uniform(rng, 180.0, 420.0) as usize,
        motor,
        rng,
        10.0,
    );
    // Main heat.
    plateau(
        &mut out,
        uniform(rng, 600.0, 1200.0) as usize,
        heat,
        rng,
        25.0,
    );
    // Main wash agitation.
    plateau(
        &mut out,
        uniform(rng, 900.0, 1800.0) as usize,
        motor,
        rng,
        15.0,
    );
    // Rinse heat (shorter).
    plateau(
        &mut out,
        uniform(rng, 480.0, 900.0) as usize,
        heat * 0.95,
        rng,
        25.0,
    );
    // Cold rinse.
    plateau(
        &mut out,
        uniform(rng, 600.0, 1200.0) as usize,
        motor,
        rng,
        15.0,
    );
    // Drying element.
    plateau(
        &mut out,
        uniform(rng, 900.0, 1800.0) as usize,
        dry,
        rng,
        20.0,
    );
    out
}

/// Washing machine: fill/agitate, heating plateau, drum oscillation
/// (sinusoidal agitation), pulsed rinses, spin ramps — 60–120 minutes.
fn washing_machine(rng: &mut impl Rng) -> Vec<f32> {
    let heat = uniform(rng, 1800.0, 2200.0);
    let drum = uniform(rng, 250.0, 500.0);
    let spin = uniform(rng, 400.0, 700.0);
    let mut out = Vec::new();
    // Fill + initial agitation.
    let fill = uniform(rng, 240.0, 480.0) as usize;
    for i in 0..fill {
        let osc = 0.5 + 0.5 * ((i as f32 / 20.0).sin().abs());
        out.push((drum * osc + normal(rng, 0.0, 20.0)).max(0.0));
    }
    // Heating plateau (the discriminative part).
    plateau(
        &mut out,
        uniform(rng, 600.0, 1200.0) as usize,
        heat,
        rng,
        30.0,
    );
    // Main wash: drum agitation with reversals.
    let wash = uniform(rng, 1200.0, 2400.0) as usize;
    for i in 0..wash {
        let phase = (i / 45) % 3; // agitate, pause, agitate
        let level = if phase == 1 { drum * 0.15 } else { drum };
        out.push((level + normal(rng, 0.0, 25.0)).max(0.0));
    }
    // Rinse pulses.
    for _ in 0..3 {
        plateau(
            &mut out,
            uniform(rng, 90.0, 180.0) as usize,
            drum * 0.8,
            rng,
            20.0,
        );
        plateau(
            &mut out,
            uniform(rng, 60.0, 120.0) as usize,
            drum * 0.1,
            rng,
            5.0,
        );
    }
    // Final spin: two ramps to peak.
    for _ in 0..2 {
        let ramp = uniform(rng, 120.0, 240.0) as usize;
        for i in 0..ramp {
            let frac = i as f32 / ramp as f32;
            out.push((spin * (0.3 + 0.7 * frac) + normal(rng, 0.0, 25.0)).max(0.0));
        }
    }
    out
}

/// Electric shower: one very high flat plateau, 4–12 minutes, 7–9.5 kW.
fn shower(rng: &mut impl Rng) -> Vec<f32> {
    let power = uniform(rng, 7000.0, 9500.0);
    let secs = uniform(rng, 240.0, 720.0) as usize;
    let mut out = Vec::with_capacity(secs);
    // Thermostatic modulation: occasional brief dips as the user adjusts.
    let mut level = power;
    for i in 0..secs {
        if i % 97 == 96 {
            level = power * uniform(rng, 0.85, 1.0);
        }
        out.push((level + normal(rng, 0.0, 40.0)).max(0.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn names_slugs_parse_round_trip() {
        for kind in ApplianceKind::ALL {
            assert_eq!(ApplianceKind::parse(kind.slug()), Some(kind));
            assert_eq!(ApplianceKind::parse(kind.name()), Some(kind));
            assert_eq!(
                ApplianceKind::parse(&kind.name().to_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(ApplianceKind::parse("toaster"), None);
        assert_eq!(
            format!("{}", ApplianceKind::WashingMachine),
            "Washing Machine"
        );
    }

    #[test]
    fn kettle_signature_shape() {
        let mut r = rng();
        for _ in 0..20 {
            let p = ApplianceKind::Kettle.sample_activation(&mut r, 60);
            assert!((2..=5).contains(&p.len()), "kettle length {} min", p.len());
            let peak = p.iter().cloned().fold(0.0f32, f32::max);
            assert!((2300.0..3100.0).contains(&peak), "kettle peak {peak}");
        }
    }

    #[test]
    fn shower_is_highest_power() {
        let mut r = rng();
        let p = ApplianceKind::Shower.sample_activation(&mut r, 60);
        let peak = p.iter().cloned().fold(0.0f32, f32::max);
        assert!(peak > 6500.0, "shower peak {peak}");
        assert!((4..=12).contains(&p.len()), "shower length {}", p.len());
    }

    #[test]
    fn dishwasher_has_two_heating_plateaus_and_long_cycle() {
        let mut r = rng();
        for _ in 0..5 {
            let p = ApplianceKind::Dishwasher.sample_activation(&mut r, 60);
            assert!(
                (60..=135).contains(&p.len()),
                "dishwasher length {} min",
                p.len()
            );
            // Count minutes above 1.5 kW: both heating phases contribute.
            let hot = p.iter().filter(|&&v| v > 1500.0).count();
            assert!(hot >= 15, "dishwasher heating minutes {hot}");
            // And a substantial low-power motor stretch exists.
            let low = p.iter().filter(|&&v| v > 20.0 && v < 600.0).count();
            assert!(low >= 20, "dishwasher motor minutes {low}");
        }
    }

    #[test]
    fn washing_machine_cycle_structure() {
        let mut r = rng();
        let p = ApplianceKind::WashingMachine.sample_activation(&mut r, 60);
        assert!((50..=135).contains(&p.len()), "wm length {} min", p.len());
        let peak = p.iter().cloned().fold(0.0f32, f32::max);
        assert!(peak > 1500.0, "wm heating peak {peak}");
    }

    #[test]
    fn microwave_duty_cycling() {
        let mut r = rng();
        let p = ApplianceKind::Microwave.sample_activation(&mut r, 1);
        let peak = p.iter().cloned().fold(0.0f32, f32::max);
        assert!((900.0..1650.0).contains(&peak), "microwave peak {peak}");
        assert!(!p.is_empty() && p.len() <= 8 * 60 + 60);
    }

    #[test]
    fn profiles_are_nonnegative_finite() {
        let mut r = rng();
        for kind in ApplianceKind::ALL {
            for interval in [1u32, 6, 8, 60] {
                let p = kind.sample_activation(&mut r, interval);
                assert!(!p.is_empty());
                assert!(p.iter().all(|v| v.is_finite() && *v >= 0.0));
            }
        }
    }

    #[test]
    fn bucketing_preserves_mean_power() {
        let mut r = rng();
        let per_sec = super::kettle(&mut r);
        let bucketed = super::bucket_to_interval(&per_sec, 60);
        let mean_sec: f32 = per_sec.iter().sum::<f32>() / per_sec.len() as f32;
        let total_bucketed: f32 = bucketed
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let chunk = per_sec[i * 60..].len().min(60);
                v * chunk as f32
            })
            .sum();
        let mean_bucketed = total_bucketed / per_sec.len() as f32;
        assert!((mean_sec - mean_bucketed).abs() < 1.0);
    }

    #[test]
    fn bucketing_never_returns_empty() {
        assert_eq!(super::bucket_to_interval(&[], 60), vec![0.0]);
        assert_eq!(super::bucket_to_interval(&[5.0], 60), vec![5.0]);
    }

    #[test]
    fn thresholds_below_typical_peaks() {
        for kind in ApplianceKind::ALL {
            assert!(kind.on_threshold_w() < kind.typical_peak_w() / 2.0);
            assert!(kind.mean_daily_activations() > 0.0);
        }
    }
}
