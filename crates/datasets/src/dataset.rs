//! Dataset presets mirroring the structure of UK-DALE, REFIT and IDEAL.
//!
//! A [`Dataset`] is a collection of simulated [`House`]s plus a train/test
//! house split. The three presets reproduce the *structural* properties
//! that matter for the paper's evaluation:
//!
//! | Preset       | Houses | Days | Native rate | Label style            |
//! |--------------|--------|------|-------------|------------------------|
//! | `UkdaleLike` | 5      | 30   | 6 s         | window activation      |
//! | `RefitLike`  | 12     | 21   | 8 s         | window activation      |
//! | `IdealLike`  | 24     | 14   | 1 s         | household possession   |
//!
//! House counts are scaled to laptop budgets (IDEAL has 255 real homes);
//! everything is simulated at the paper's common 1-minute frequency by
//! default (`sim_interval_secs = 60`), since the first step of the paper's
//! pipeline is resampling to 1 minute anyway. Simulating at the native rate
//! and resampling through [`ds_timeseries::resample`] is supported for
//! demonstrations (see `examples/`), just slower.
//!
//! The split guarantees the paper's protocol: *train and test houses are
//! always distinct*, and every appliance has possessing and non-possessing
//! houses on both sides of the split, so detection always has positive and
//! negative examples.

use crate::appliance::ApplianceKind;
use crate::house::{House, HouseConfig};
use crate::noise::NoiseModel;
use crate::randutil::{coin, uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The three dataset families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// UK-DALE-like: few houses, long recordings.
    UkdaleLike,
    /// REFIT-like: more houses, medium recordings.
    RefitLike,
    /// IDEAL-like: many houses, short recordings, possession labels.
    IdealLike,
}

impl DatasetPreset {
    /// All presets in display order.
    pub const ALL: [DatasetPreset; 3] = [
        DatasetPreset::UkdaleLike,
        DatasetPreset::RefitLike,
        DatasetPreset::IdealLike,
    ];

    /// Display name used by the app and reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::UkdaleLike => "UKDALE",
            DatasetPreset::RefitLike => "REFIT",
            DatasetPreset::IdealLike => "IDEAL",
        }
    }

    /// Parse a preset name (case-insensitive, with or without `-like`).
    pub fn parse(s: &str) -> Option<DatasetPreset> {
        let lower = s.trim().to_ascii_lowercase();
        match lower.trim_end_matches("-like") {
            "ukdale" | "uk-dale" => Some(DatasetPreset::UkdaleLike),
            "refit" => Some(DatasetPreset::RefitLike),
            "ideal" => Some(DatasetPreset::IdealLike),
            _ => None,
        }
    }

    /// Whether weak labels come from the possession survey (IDEAL) rather
    /// than from window-level activation (UK-DALE / REFIT). Mirrors §II-A
    /// of the paper.
    pub fn uses_possession_labels(self) -> bool {
        matches!(self, DatasetPreset::IdealLike)
    }

    /// Native sampling rate of the real counterpart, seconds.
    pub fn native_interval_secs(self) -> u32 {
        match self {
            DatasetPreset::UkdaleLike => 6,
            DatasetPreset::RefitLike => 8,
            DatasetPreset::IdealLike => 1,
        }
    }

    /// Probability that a household possesses each appliance (UK ownership
    /// statistics, lightly adjusted so every preset has negatives).
    pub fn possession_prob(self, kind: ApplianceKind) -> f32 {
        match kind {
            ApplianceKind::Kettle => 0.8,
            ApplianceKind::Microwave => 0.75,
            ApplianceKind::Dishwasher => 0.55,
            ApplianceKind::WashingMachine => 0.8,
            ApplianceKind::Shower => 0.5,
        }
    }

    /// Default full configuration of the preset.
    pub fn config(self) -> DatasetConfig {
        let (num_houses, days) = match self {
            DatasetPreset::UkdaleLike => (5, 30),
            DatasetPreset::RefitLike => (12, 21),
            DatasetPreset::IdealLike => (24, 14),
        };
        DatasetConfig {
            preset: self,
            num_houses,
            days,
            sim_interval_secs: 60,
            noise: NoiseModel {
                sigma_w: 8.0,
                dropout_start_prob: 0.0005,
                dropout_mean_len: 8.0,
                quantize_w: 1.0,
            },
            seed: 0xD5C0_9E00 ^ (self as u64),
        }
    }
}

impl std::fmt::Display for DatasetPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full generation parameters for a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Which real dataset this mimics.
    pub preset: DatasetPreset,
    /// Number of houses to simulate.
    pub num_houses: u32,
    /// Recording length per house, days.
    pub days: u32,
    /// Simulation sampling interval, seconds (60 = the paper's common rate).
    pub sim_interval_secs: u32,
    /// Measurement model for the aggregate channel.
    pub noise: NoiseModel,
    /// Master seed; houses derive their seeds from it.
    pub seed: u64,
}

impl DatasetConfig {
    /// Shrink the preset for fast tests: `num_houses` houses, `days` days.
    pub fn tiny(preset: DatasetPreset, num_houses: u32, days: u32) -> DatasetConfig {
        DatasetConfig {
            num_houses,
            days,
            ..preset.config()
        }
    }
}

/// A simulated dataset: houses plus a deterministic train/test house split.
#[derive(Debug, Clone)]
pub struct Dataset {
    config: DatasetConfig,
    houses: Vec<House>,
    n_train: usize,
}

impl Dataset {
    /// Generate the dataset described by `config`.
    ///
    /// Possession is drawn per house from the preset's ownership
    /// probabilities, then patched so every appliance has at least one
    /// possessing and one non-possessing house in both the train and test
    /// partitions (whenever the partition has ≥ 2 houses).
    pub fn generate(config: DatasetConfig) -> Dataset {
        let n = config.num_houses.max(2) as usize;
        let n_train = n - (n / 4).max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Draw possession matrix [house][appliance].
        let mut possession: Vec<Vec<bool>> = (0..n)
            .map(|_| {
                ApplianceKind::ALL
                    .iter()
                    .map(|&k| coin(&mut rng, config.preset.possession_prob(k)))
                    .collect()
            })
            .collect();
        enforce_coverage(&mut possession, n_train);

        let houses = (0..n)
            .map(|i| {
                let appliances: Vec<ApplianceKind> = ApplianceKind::ALL
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| possession[i][*j])
                    .map(|(_, &k)| k)
                    .collect();
                let usage_scale = uniform(&mut rng, 0.7, 1.4);
                let house_seed = config
                    .seed
                    .wrapping_mul(0x100_0000_01B3)
                    .wrapping_add(i as u64);
                House::simulate(
                    HouseConfig {
                        house_id: i as u32,
                        start: 0,
                        days: config.days,
                        interval_secs: config.sim_interval_secs,
                        appliances,
                        usage_scale,
                        noise: config.noise,
                    },
                    house_seed,
                )
            })
            .collect();

        Dataset {
            config,
            houses,
            n_train,
        }
    }

    /// The generation parameters.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// The preset this dataset mimics.
    pub fn preset(&self) -> DatasetPreset {
        self.config.preset
    }

    /// All houses.
    pub fn houses(&self) -> &[House] {
        &self.houses
    }

    /// Houses reserved for training (always disjoint from test).
    pub fn train_houses(&self) -> &[House] {
        &self.houses[..self.n_train]
    }

    /// Houses reserved for testing/demonstration — the paper stresses that
    /// demo series come from houses never used in training.
    pub fn test_houses(&self) -> &[House] {
        &self.houses[self.n_train..]
    }

    /// Look up a house by id.
    pub fn house(&self, id: u32) -> Option<&House> {
        self.houses.iter().find(|h| h.id() == id)
    }
}

/// Patch a possession matrix so each appliance column has both values in
/// both partitions (when the partition size allows).
fn enforce_coverage(possession: &mut [Vec<bool>], n_train: usize) {
    let n = possession.len();
    let n_appl = ApplianceKind::ALL.len();
    for j in 0..n_appl {
        patch_partition(possession, j, 0, n_train);
        patch_partition(possession, j, n_train, n);
    }
}

fn patch_partition(possession: &mut [Vec<bool>], j: usize, lo: usize, hi: usize) {
    if hi - lo < 2 {
        // A 1-house partition can only cover one value; prefer possession so
        // the appliance is at least demonstrable.
        if hi > lo && !possession[lo][j] {
            possession[lo][j] = true;
        }
        return;
    }
    let count = (lo..hi).filter(|&i| possession[i][j]).count();
    if count == 0 {
        possession[lo][j] = true;
    } else if count == hi - lo {
        possession[hi - 1][j] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_parsing_and_names() {
        assert_eq!(
            DatasetPreset::parse("ukdale"),
            Some(DatasetPreset::UkdaleLike)
        );
        assert_eq!(
            DatasetPreset::parse("UK-DALE"),
            Some(DatasetPreset::UkdaleLike)
        );
        assert_eq!(
            DatasetPreset::parse("refit-like"),
            Some(DatasetPreset::RefitLike)
        );
        assert_eq!(
            DatasetPreset::parse("IDEAL"),
            Some(DatasetPreset::IdealLike)
        );
        assert_eq!(DatasetPreset::parse("redd"), None);
        assert_eq!(DatasetPreset::UkdaleLike.name(), "UKDALE");
        assert!(DatasetPreset::IdealLike.uses_possession_labels());
        assert!(!DatasetPreset::RefitLike.uses_possession_labels());
    }

    #[test]
    fn native_rates_match_real_datasets() {
        assert_eq!(DatasetPreset::UkdaleLike.native_interval_secs(), 6);
        assert_eq!(DatasetPreset::RefitLike.native_interval_secs(), 8);
        assert_eq!(DatasetPreset::IdealLike.native_interval_secs(), 1);
    }

    #[test]
    fn generation_respects_counts_and_split() {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::RefitLike, 8, 2));
        assert_eq!(ds.houses().len(), 8);
        assert_eq!(ds.train_houses().len(), 6);
        assert_eq!(ds.test_houses().len(), 2);
        // Train and test are disjoint by id.
        let train: Vec<u32> = ds.train_houses().iter().map(|h| h.id()).collect();
        let test: Vec<u32> = ds.test_houses().iter().map(|h| h.id()).collect();
        assert!(train.iter().all(|id| !test.contains(id)));
        assert!(ds.house(0).is_some());
        assert!(ds.house(99).is_none());
    }

    #[test]
    fn coverage_guarantee_holds() {
        for preset in DatasetPreset::ALL {
            let ds = Dataset::generate(DatasetConfig::tiny(preset, 8, 1));
            for kind in ApplianceKind::ALL {
                let train_pos = ds
                    .train_houses()
                    .iter()
                    .filter(|h| h.possesses(kind))
                    .count();
                let train_neg = ds.train_houses().len() - train_pos;
                let test_pos = ds
                    .test_houses()
                    .iter()
                    .filter(|h| h.possesses(kind))
                    .count();
                let test_neg = ds.test_houses().len() - test_pos;
                assert!(
                    train_pos >= 1,
                    "{preset:?}/{kind:?} no possessing train house"
                );
                assert!(
                    train_neg >= 1,
                    "{preset:?}/{kind:?} no negative train house"
                );
                assert!(
                    test_pos >= 1,
                    "{preset:?}/{kind:?} no possessing test house"
                );
                assert!(test_neg >= 1, "{preset:?}/{kind:?} no negative test house");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 3, 1));
        let b = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 3, 1));
        // NaN-aware comparison: dropouts make `==` unusable here.
        assert!(a.houses()[0]
            .aggregate()
            .same_as(b.houses()[0].aggregate(), 0.0));
        assert!(a.houses()[2]
            .aggregate()
            .same_as(b.houses()[2].aggregate(), 0.0));
        // Different presets have different seeds and content.
        let c = Dataset::generate(DatasetConfig::tiny(DatasetPreset::RefitLike, 3, 1));
        assert!(!a.houses()[0]
            .aggregate()
            .same_as(c.houses()[0].aggregate(), 0.0));
    }

    #[test]
    fn minimum_two_houses() {
        let cfg = DatasetConfig::tiny(DatasetPreset::UkdaleLike, 1, 1);
        let ds = Dataset::generate(cfg);
        assert_eq!(ds.houses().len(), 2);
        assert_eq!(ds.train_houses().len(), 1);
        assert_eq!(ds.test_houses().len(), 1);
    }

    #[test]
    fn patch_partition_single_house_prefers_possession() {
        let mut m = vec![vec![false; 5]];
        super::patch_partition(&mut m, 2, 0, 1);
        assert!(m[0][2]);
    }
}
