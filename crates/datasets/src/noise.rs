//! Measurement imperfections: metering noise and transmission dropouts.
//!
//! Real smart-meter channels carry additive sensor noise and lose readings
//! in bursts (radio dropouts, gateway reboots). The injectors here apply
//! both to a clean simulated aggregate, so the training pipeline's
//! missing-data handling (subsequence omission) is actually exercised.

use crate::randutil::{coin, normal, uniform};
use ds_timeseries::TimeSeries;
use rand::Rng;

/// Parameters of the measurement model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of additive Gaussian noise, watts.
    pub sigma_w: f32,
    /// Probability per sample of *starting* a dropout burst.
    pub dropout_start_prob: f32,
    /// Mean dropout burst length in samples.
    pub dropout_mean_len: f32,
    /// Meter quantization step in watts (0 disables quantization).
    pub quantize_w: f32,
}

impl NoiseModel {
    /// A clean channel: no noise, no dropouts.
    pub fn none() -> Self {
        NoiseModel {
            sigma_w: 0.0,
            dropout_start_prob: 0.0,
            dropout_mean_len: 0.0,
            quantize_w: 0.0,
        }
    }

    /// Apply the model to a series, returning the degraded copy.
    pub fn apply(&self, rng: &mut impl Rng, series: &TimeSeries) -> TimeSeries {
        let mut values = series.values().to_vec();
        if self.sigma_w > 0.0 || self.quantize_w > 0.0 {
            for v in &mut values {
                if v.is_nan() {
                    continue;
                }
                let mut x = *v;
                if self.sigma_w > 0.0 {
                    x += normal(rng, 0.0, self.sigma_w);
                }
                if self.quantize_w > 0.0 {
                    x = (x / self.quantize_w).round() * self.quantize_w;
                }
                *v = x.max(0.0);
            }
        }
        if self.dropout_start_prob > 0.0 && self.dropout_mean_len > 0.0 {
            let mut i = 0usize;
            while i < values.len() {
                if coin(rng, self.dropout_start_prob) {
                    // Geometric-ish burst length around the mean.
                    let len = uniform(rng, 1.0, 2.0 * self.dropout_mean_len).round() as usize;
                    let end = (i + len.max(1)).min(values.len());
                    for v in &mut values[i..end] {
                        *v = f32::NAN;
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
        }
        TimeSeries::from_values(series.start(), series.interval_secs(), values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clean() -> TimeSeries {
        TimeSeries::from_values(0, 60, vec![500.0; 2000])
    }

    #[test]
    fn none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = NoiseModel::none().apply(&mut rng, &clean());
        assert_eq!(out, clean());
    }

    #[test]
    fn gaussian_noise_has_requested_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = NoiseModel {
            sigma_w: 20.0,
            ..NoiseModel::none()
        };
        let out = model.apply(&mut rng, &clean());
        let s = ds_timeseries::stats::summarize(&out).unwrap();
        assert!((s.mean - 500.0).abs() < 2.0, "mean {}", s.mean);
        assert!((s.std - 20.0).abs() < 2.0, "std {}", s.std);
    }

    #[test]
    fn noise_never_goes_negative() {
        let mut rng = StdRng::seed_from_u64(3);
        let zero = TimeSeries::zeros(0, 60, 1000);
        let model = NoiseModel {
            sigma_w: 50.0,
            ..NoiseModel::none()
        };
        let out = model.apply(&mut rng, &zero);
        assert!(out.values().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn quantization_snaps_to_grid() {
        let mut rng = StdRng::seed_from_u64(4);
        let ts = TimeSeries::from_values(0, 60, vec![503.0, 507.0, 512.4]);
        let model = NoiseModel {
            quantize_w: 10.0,
            ..NoiseModel::none()
        };
        let out = model.apply(&mut rng, &ts);
        assert_eq!(out.values(), &[500.0, 510.0, 510.0]);
    }

    #[test]
    fn dropouts_create_bursts_at_expected_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = NoiseModel {
            dropout_start_prob: 0.01,
            dropout_mean_len: 5.0,
            ..NoiseModel::none()
        };
        let out = model.apply(&mut rng, &clean());
        let ratio = out.missing_ratio();
        // Expected missing ratio ~ p * mean_len / (1 + p * mean_len) ≈ 0.048.
        assert!(ratio > 0.01 && ratio < 0.12, "missing ratio {ratio}");
        let gaps = ds_timeseries::missing::find_gaps(&out);
        assert!(!gaps.is_empty());
        let mean_len: f32 = gaps.iter().map(|g| g.len() as f32).sum::<f32>() / gaps.len() as f32;
        assert!(mean_len > 1.5, "bursts, not singletons: {mean_len}");
    }

    #[test]
    fn existing_missing_survives() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ts = clean();
        ts.values_mut()[10] = f32::NAN;
        let model = NoiseModel {
            sigma_w: 5.0,
            ..NoiseModel::none()
        };
        let out = model.apply(&mut rng, &ts);
        assert!(out.values()[10].is_nan());
    }
}
