//! Occupancy-driven activation scheduling.
//!
//! When an appliance is used is as characteristic as how: kettles cluster at
//! breakfast and tea time, showers in the morning, dishwashers after dinner,
//! washing machines in the daytime. The scheduler draws, day by day, a
//! Poisson number of activations per appliance and places each start time by
//! sampling the appliance's hour-of-day preference histogram, with a minimum
//! separation so activations of one appliance never overlap themselves.

use crate::appliance::ApplianceKind;
use crate::randutil::{poisson, uniform, weighted_index};
use ds_timeseries::time::DAY_SECS;
use rand::Rng;

/// Hour-of-day preference weights (24 entries, unnormalized) for starting
/// an activation of the given appliance.
pub fn hour_preferences(kind: ApplianceKind) -> [f32; 24] {
    match kind {
        // Breakfast, mid-morning, afternoon tea, evening.
        ApplianceKind::Kettle => [
            0.1, 0.1, 0.1, 0.1, 0.2, 0.5, 2.0, 3.0, 2.5, 1.5, 1.5, 1.2, 1.5, 1.2, 1.0, 1.5, 2.0,
            2.0, 1.8, 1.5, 1.2, 0.8, 0.4, 0.2,
        ],
        // Meal times.
        ApplianceKind::Microwave => [
            0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.8, 1.5, 1.0, 0.5, 0.5, 1.5, 2.5, 1.5, 0.6, 0.5, 1.0,
            2.0, 2.5, 1.8, 1.0, 0.6, 0.3, 0.1,
        ],
        // After meals, many households run it overnight on cheap tariffs.
        ApplianceKind::Dishwasher => [
            0.4, 0.3, 0.2, 0.1, 0.1, 0.1, 0.3, 0.8, 1.0, 0.8, 0.5, 0.5, 1.0, 1.2, 0.8, 0.5, 0.5,
            0.8, 1.5, 2.5, 2.5, 2.0, 1.2, 0.6,
        ],
        // Daytime chore.
        ApplianceKind::WashingMachine => [
            0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.8, 1.5, 2.5, 2.5, 2.0, 1.8, 1.5, 1.5, 1.2, 1.0, 1.0,
            1.2, 1.0, 0.8, 0.5, 0.3, 0.2, 0.1,
        ],
        // Morning dominant, smaller evening peak.
        ApplianceKind::Shower => [
            0.1, 0.1, 0.1, 0.1, 0.3, 1.0, 3.0, 3.5, 2.5, 1.0, 0.5, 0.3, 0.3, 0.3, 0.3, 0.4, 0.6,
            1.0, 1.5, 1.5, 1.2, 0.8, 0.4, 0.2,
        ],
    }
}

/// One scheduled activation: start timestamp (seconds) — the signature
/// generator decides the duration later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Activation {
    /// Unix timestamp (seconds) at which the activation begins.
    pub start: i64,
}

/// Schedule activations of `kind` over `[start, start + days*86400)`.
///
/// `usage_scale` multiplies the appliance's mean daily rate (captures
/// heavier/lighter-usage households). Activations are sorted and separated
/// by at least `min_gap_secs`.
pub fn schedule(
    rng: &mut impl Rng,
    kind: ApplianceKind,
    start: i64,
    days: u32,
    usage_scale: f32,
    min_gap_secs: i64,
) -> Vec<Activation> {
    let prefs = hour_preferences(kind);
    let mut starts: Vec<i64> = Vec::new();
    for day in 0..days as i64 {
        let day_start = start + day * DAY_SECS;
        let n = poisson(rng, kind.mean_daily_activations() * usage_scale.max(0.0));
        for _ in 0..n {
            let hour = weighted_index(rng, &prefs) as i64;
            let within = uniform(rng, 0.0, 3600.0) as i64;
            starts.push(day_start + hour * 3600 + within);
        }
    }
    starts.sort_unstable();
    // Enforce the minimum gap by dropping activations that crowd a
    // predecessor (a person cannot start the same machine twice at once).
    let mut out: Vec<Activation> = Vec::with_capacity(starts.len());
    for s in starts {
        if out.last().is_none_or(|a| s - a.start >= min_gap_secs) {
            out.push(Activation { start: s });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preference_tables_are_positive() {
        for kind in ApplianceKind::ALL {
            let prefs = hour_preferences(kind);
            assert!(prefs.iter().all(|&w| w > 0.0));
            assert_eq!(prefs.len(), 24);
        }
    }

    #[test]
    fn schedule_respects_horizon_and_order() {
        let mut rng = StdRng::seed_from_u64(2);
        let days = 30;
        let acts = schedule(&mut rng, ApplianceKind::Kettle, 1000, days, 1.0, 600);
        assert!(!acts.is_empty());
        for w in acts.windows(2) {
            assert!(w[1].start - w[0].start >= 600, "gap violated");
        }
        for a in &acts {
            assert!(a.start >= 1000);
            assert!(a.start < 1000 + days as i64 * DAY_SECS + 3600);
        }
    }

    #[test]
    fn rate_scales_with_usage() {
        let mut rng = StdRng::seed_from_u64(3);
        let low = schedule(&mut rng, ApplianceKind::Kettle, 0, 60, 0.5, 600).len();
        let high = schedule(&mut rng, ApplianceKind::Kettle, 0, 60, 2.0, 600).len();
        assert!(high > low, "high {high} <= low {low}");
        let none = schedule(&mut rng, ApplianceKind::Kettle, 0, 60, 0.0, 600);
        assert!(none.is_empty());
    }

    #[test]
    fn kettle_mornings_beat_nights() {
        let mut rng = StdRng::seed_from_u64(4);
        let acts = schedule(&mut rng, ApplianceKind::Kettle, 0, 200, 1.0, 60);
        let morning = acts
            .iter()
            .filter(|a| {
                let h = ds_timeseries::time::hour_of_day(a.start);
                (6..9).contains(&h)
            })
            .count();
        let night = acts
            .iter()
            .filter(|a| ds_timeseries::time::hour_of_day(a.start) < 4)
            .count();
        assert!(morning > night * 3, "morning {morning} vs night {night}");
    }

    #[test]
    fn long_cycle_gap_prevents_self_overlap() {
        let mut rng = StdRng::seed_from_u64(5);
        // Dishwasher cycles are up to ~130 min; a 3 h gap guarantees no
        // self-overlap.
        let acts = schedule(&mut rng, ApplianceKind::Dishwasher, 0, 365, 3.0, 3 * 3600);
        for w in acts.windows(2) {
            assert!(w[1].start - w[0].start >= 3 * 3600);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = schedule(
            &mut StdRng::seed_from_u64(9),
            ApplianceKind::Shower,
            0,
            30,
            1.0,
            600,
        );
        let b = schedule(
            &mut StdRng::seed_from_u64(9),
            ApplianceKind::Shower,
            0,
            30,
            1.0,
            600,
        );
        assert_eq!(a, b);
    }
}
