//! Property-based tests of the dataset substrate's invariants.

use ds_datasets::appliance::ApplianceKind;
use ds_datasets::baseload::BaseloadProfile;
use ds_datasets::house::{House, HouseConfig};
use ds_datasets::noise::NoiseModel;
use ds_datasets::occupancy::{hour_preferences, schedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_appliance() -> impl Strategy<Value = ApplianceKind> {
    prop::sample::select(ApplianceKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn signatures_are_bounded_and_nonnegative(
        kind in any_appliance(),
        seed in 0u64..1000,
        interval in prop::sample::select(vec![1u32, 6, 8, 60]),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = kind.sample_activation(&mut rng, interval);
        prop_assert!(!profile.is_empty());
        let peak = profile.iter().cloned().fold(0.0f32, f32::max);
        prop_assert!(peak <= kind.typical_peak_w() * 1.4, "{kind:?} peak {peak}");
        prop_assert!(profile.iter().all(|v| *v >= 0.0 && v.is_finite()));
        // Duration sanity: no appliance runs longer than 3 hours.
        prop_assert!(profile.len() as u64 * interval as u64 <= 3 * 3600);
    }

    #[test]
    fn schedule_respects_gap_and_horizon(
        kind in any_appliance(),
        seed in 0u64..500,
        days in 1u32..20,
        scale in 0.0f32..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gap = 1800i64;
        let acts = schedule(&mut rng, kind, 0, days, scale, gap);
        for w in acts.windows(2) {
            prop_assert!(w[1].start - w[0].start >= gap);
        }
        for a in &acts {
            prop_assert!(a.start >= 0);
            prop_assert!(a.start < days as i64 * 86_400 + 3600);
        }
    }

    #[test]
    fn hour_preferences_strictly_positive(kind in any_appliance()) {
        prop_assert!(hour_preferences(kind).iter().all(|&w| w > 0.0));
    }

    #[test]
    fn baseload_is_physical(seed in 0u64..200, len in 10usize..2000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = BaseloadProfile::sample(&mut rng);
        let ts = profile.generate(&mut rng, 0, 60, len);
        prop_assert_eq!(ts.len(), len);
        prop_assert!(ts.values().iter().all(|v| v.is_finite() && *v >= 0.0));
        // Base load never exceeds a few kW.
        let peak = ts.values().iter().cloned().fold(0.0f32, f32::max);
        prop_assert!(peak < 3000.0, "baseload peak {peak}");
    }

    #[test]
    fn house_invariants(
        seed in 0u64..100,
        days in 1u32..4,
        appliances in prop::collection::btree_set(any_appliance(), 0..5),
    ) {
        let appliances: Vec<ApplianceKind> = appliances.into_iter().collect();
        let config = HouseConfig {
            house_id: 1,
            start: 0,
            days,
            interval_secs: 60,
            appliances: appliances.clone(),
            usage_scale: 1.0,
            noise: NoiseModel::none(),
        };
        let house = House::simulate(config, seed);
        prop_assert_eq!(house.aggregate().len(), days as usize * 1440);
        for kind in ApplianceKind::ALL {
            let possessed = appliances.contains(&kind);
            prop_assert_eq!(house.possesses(kind), possessed);
            let status = house.status(kind);
            prop_assert_eq!(status.len(), house.aggregate().len());
            if !possessed {
                prop_assert!(!status.any_on());
            }
            if let Some(ch) = house.channel(kind) {
                // The clean aggregate dominates each channel everywhere.
                for (a, c) in house.aggregate().values().iter().zip(ch.values()) {
                    prop_assert!(a + 1e-3 >= *c, "aggregate {a} below channel {c}");
                }
            }
        }
    }

    #[test]
    fn noise_preserves_length_and_sign(
        seed in 0u64..200,
        sigma in 0.0f32..50.0,
        p_drop in 0.0f32..0.02,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let clean = ds_timeseries::TimeSeries::from_values(0, 60, vec![250.0; 500]);
        let model = NoiseModel {
            sigma_w: sigma,
            dropout_start_prob: p_drop,
            dropout_mean_len: 5.0,
            quantize_w: 1.0,
        };
        let noisy = model.apply(&mut rng, &clean);
        prop_assert_eq!(noisy.len(), clean.len());
        prop_assert!(noisy
            .values()
            .iter()
            .all(|v| v.is_nan() || (*v >= 0.0 && v.is_finite())));
    }
}
