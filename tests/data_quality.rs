//! Integration tests of the dataset substrate's promises across presets:
//! the invariants the whole evaluation rests on.

use devicescope::datasets::labels::{Corpus, WeakLabel};
use devicescope::datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
use devicescope::timeseries::io::{read_csv, write_csv};
use devicescope::timeseries::resample::to_one_minute;

#[test]
fn every_preset_provides_trainable_corpora() {
    for preset in DatasetPreset::ALL {
        let ds = Dataset::generate(DatasetConfig::tiny(preset, 6, 2));
        for kind in ApplianceKind::ALL {
            let corpus = Corpus::build(&ds, kind, 120);
            assert!(!corpus.train.is_empty(), "{preset:?}/{kind:?}: empty train");
            assert!(!corpus.test.is_empty(), "{preset:?}/{kind:?}: empty test");
            // Label mode matches the preset's label style.
            let expected = if preset.uses_possession_labels() {
                WeakLabel::Possession
            } else {
                WeakLabel::WindowActivation
            };
            assert_eq!(corpus.mode, expected);
            // Both classes are present in training (coverage guarantee).
            assert!(
                corpus.train.iter().any(|w| w.weak),
                "{preset:?}/{kind:?}: no positive training windows"
            );
            assert!(
                corpus.train.iter().any(|w| !w.weak),
                "{preset:?}/{kind:?}: no negative training windows"
            );
        }
    }
}

#[test]
fn aggregate_always_covers_appliance_channels() {
    // Power balance: the aggregate (before noise it is baseload + channels)
    // must be at least each channel, within the noise margin.
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::RefitLike, 4, 2));
    for house in ds.houses() {
        for kind in house.appliances() {
            let ch = house.channel(kind).unwrap();
            let agg = house.aggregate();
            let mut violations = 0usize;
            let mut checked = 0usize;
            for (a, c) in agg.values().iter().zip(ch.values()) {
                if a.is_nan() {
                    continue;
                }
                checked += 1;
                // Allow the measurement-noise margin.
                if *a + 50.0 < *c {
                    violations += 1;
                }
            }
            assert!(
                violations * 100 <= checked,
                "house {} {kind:?}: {violations}/{checked} balance violations",
                house.id()
            );
        }
    }
}

#[test]
fn weak_activation_labels_match_ground_truth() {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
    let corpus = Corpus::build(&ds, ApplianceKind::Kettle, 120);
    for w in corpus.train.iter().chain(&corpus.test) {
        assert_eq!(
            w.weak,
            w.strong.contains(&1),
            "window at {} label mismatch",
            w.start
        );
        assert_eq!(w.values.len(), w.strong.len());
        assert!(w.values.iter().all(|v| !v.is_nan()));
    }
}

#[test]
fn native_rate_simulation_resamples_cleanly() {
    // REFIT-like at its native 8 s rate, downsampled to the common 1-minute
    // frequency: length and energy must line up.
    let mut config = DatasetConfig::tiny(DatasetPreset::RefitLike, 2, 1);
    config.sim_interval_secs = 8;
    let ds = Dataset::generate(config);
    let native = ds.houses()[0].aggregate();
    assert_eq!(native.interval_secs(), 8);
    let common = to_one_minute(native).unwrap();
    assert_eq!(common.interval_secs(), 60);
    // 8 s does not divide 60 s: the bucketed path covers 7.5 samples/minute.
    assert_eq!(common.len(), native.len() * 8 / 60);
    if !native.has_missing() {
        let rel = (common.energy_wh() - native.energy_wh()).abs() / native.energy_wh().max(1.0);
        assert!(rel < 0.01, "energy drift {rel}");
    }
}

#[test]
fn csv_export_import_preserves_a_house_recording() {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::IdealLike, 2, 1));
    let agg = ds.houses()[0].aggregate();
    let mut buf = Vec::new();
    write_csv(agg, &mut buf).unwrap();
    let back = read_csv(buf.as_slice()).unwrap();
    assert!(back.same_as(agg, 1e-3), "CSV round trip altered the series");
}
