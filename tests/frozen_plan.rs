//! Golden tests for the frozen inference plan: BN-folded, fused-epilogue
//! networks must reproduce the mutable reference path across every
//! architecture shape the paper's ensemble uses.
//!
//! Coverage axes:
//! - kernel sizes `{5, 7, 9, 15}` — the paper's ensemble diversity knob,
//!   spanning the specialized fixed-kernel conv paths and the generic one;
//! - channel plans `[4, 8]` (both blocks carry projection shortcuts) and
//!   `[4, 4]` (the second block uses the identity shortcut, so the
//!   shortcut-free folding path is exercised);
//! - batch sizes `{1, 4, 17}` — singleton, the register-blocked sweet
//!   spot, and a remainder-row count.
//!
//! The networks are briefly *trained* first: training moves the BatchNorm
//! running statistics off their initialization (making folding a
//! non-trivial transform) and pushes probabilities away from the 0.5
//! threshold (making decision-identity meaningful).

use ds_neural::quant::QuantizedResNet;
use ds_neural::resnet::{ResNet, ResNetConfig};
use ds_neural::simd::{self, SimdMode};
use ds_neural::tensor::Tensor;
use ds_neural::train::{train_classifier, TrainConfig};
use ds_neural::{FrozenResNet, InferenceArena};

const WINDOW: usize = 64;

/// A small linearly separable corpus: odd windows carry a burst.
fn corpus(n: usize) -> (Vec<Vec<f32>>, Vec<u8>) {
    let windows: Vec<Vec<f32>> = (0..n)
        .map(|w| {
            (0..WINDOW)
                .map(|i| {
                    let base = ((w * 17 + i) % 23) as f32 * 0.04;
                    let burst = if w % 2 == 1 && i % 20 < 8 { 1.0 } else { 0.0 };
                    base + burst
                })
                .collect()
        })
        .collect();
    let labels: Vec<u8> = (0..n).map(|w| (w % 2) as u8).collect();
    (windows, labels)
}

/// Varied evaluation input, disjoint from the training corpus pattern.
fn eval_input(batch: usize) -> Tensor {
    let data: Vec<f32> = (0..batch * WINDOW)
        .map(|i| ((i * 31 % 17) as f32 - 8.0) / 4.0 + (i as f32 * 0.09).sin())
        .collect();
    Tensor::from_data(batch, 1, WINDOW, data)
}

/// Held-out calibration windows for the int8 plan: drawn from the same
/// serving distribution as [`eval_input`] (same value range) but at a
/// disjoint phase. Calibrating on the *training* corpus instead would
/// clip serving activations and inflate quantization drift — the
/// activation scales must cover the range the plan will actually see.
fn calib_input(batch: usize) -> Tensor {
    let data: Vec<f32> = (0..batch * WINDOW)
        .map(|i| (((i * 37 + 3) % 17) as f32 - 8.0) / 4.0 + (i as f32 * 0.07 + 1.0).sin())
        .collect();
    Tensor::from_data(batch, 1, WINDOW, data)
}

fn trained_net(kernel: usize, channels: Vec<usize>, seed: u64) -> ResNet {
    let mut net = ResNet::new(ResNetConfig {
        in_channels: 1,
        channels,
        kernel,
        num_classes: 2,
        seed,
    });
    let (windows, labels) = corpus(16);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 4,
        patience: None,
        ..TrainConfig::default()
    };
    train_classifier(&mut net, &windows, &labels, &cfg);
    net
}

/// The tolerance contract: logits within 1e-4 max-abs, probabilities
/// within 1e-4, CAMs within 1e-3, and thresholded decisions identical.
fn assert_frozen_matches(net: &mut ResNet, label: &str) {
    let frozen = FrozenResNet::freeze(net);
    let mut arena = InferenceArena::new();
    for batch in [1usize, 4, 17] {
        let x = eval_input(batch);
        let (logits, _) = net.infer(&x);
        let (probs, cams) = net.infer_with_cam(&x);
        frozen.predict_into(&x, &mut arena);
        for bi in 0..batch {
            for (a, r) in arena.logits_row(bi).iter().zip(logits.row(bi)) {
                assert!(
                    (a - r).abs() <= 1e-4,
                    "{label} b={batch}: logit {a} vs reference {r}"
                );
            }
            assert!(
                (arena.probs()[bi] - probs[bi]).abs() <= 1e-4,
                "{label} b={batch}: prob {} vs reference {}",
                arena.probs()[bi],
                probs[bi]
            );
            assert_eq!(
                arena.probs()[bi] > 0.5,
                probs[bi] > 0.5,
                "{label} b={batch}: decision flipped at prob {}",
                probs[bi]
            );
            for (a, r) in arena.cam(bi).iter().zip(&cams[bi]) {
                assert!(
                    (a - r).abs() <= 1e-3,
                    "{label} b={batch}: cam {a} vs reference {r}"
                );
            }
        }
    }
}

#[test]
fn frozen_matches_reference_with_projection_shortcuts() {
    for (i, kernel) in [5usize, 7, 9, 15].into_iter().enumerate() {
        let mut net = trained_net(kernel, vec![4, 8], 100 + i as u64);
        assert_frozen_matches(&mut net, &format!("k={kernel} channels=[4,8]"));
    }
}

#[test]
fn frozen_matches_reference_with_identity_shortcut() {
    for (i, kernel) in [5usize, 7, 9, 15].into_iter().enumerate() {
        let mut net = trained_net(kernel, vec![4, 4], 200 + i as u64);
        assert_frozen_matches(&mut net, &format!("k={kernel} channels=[4,4]"));
    }
}

/// The tolerance contract holds under *both* kernel dispatches: the
/// scalar twins (a `DS_SIMD=off` run) and the vectorized path must each
/// reproduce the mutable reference. The dispatch override is
/// process-global, but every assertion in this binary is tolerant under
/// either mode, so concurrent tests are unaffected.
#[test]
fn frozen_contract_holds_under_both_dispatches() {
    for (dispatch, mode) in [
        ("scalar", SimdMode::Scalar),
        // Falls back to scalar on hosts without AVX2 — the golden then
        // re-checks the twin rather than silently skipping.
        ("simd", SimdMode::Avx2),
    ] {
        simd::set_mode(Some(mode));
        for (i, kernel) in [5usize, 9, 15].into_iter().enumerate() {
            let mut net = trained_net(kernel, vec![4, 8], 400 + i as u64);
            assert_frozen_matches(&mut net, &format!("dispatch={dispatch} k={kernel}"));
        }
        simd::set_mode(None);
    }
}

/// The int8 plan's golden contract: calibrated on held-out windows, it
/// holds probabilities within the drift bound, and any decision whose
/// f32 probability clears the threshold by more than that bound is
/// identical. (These briefly trained synthetic nets park some arbitrary
/// eval windows *at* 0.5, where no finite-precision plan can promise
/// stability; the zero-flip gate on trained models is the tri-state
/// golden in `fault_injection.rs` and the perf suite's flip counter.)
#[test]
fn quantized_plan_keeps_decisions_on_goldens() {
    for (i, kernel) in [5usize, 7, 9, 15].into_iter().enumerate() {
        let net = trained_net(kernel, vec![4, 8], 500 + i as u64);
        let frozen = FrozenResNet::freeze(&net);
        let quant = QuantizedResNet::quantize(&frozen, &calib_input(8));

        let mut f32_arena = InferenceArena::new();
        let mut int8_arena = InferenceArena::new();
        for batch in [1usize, 4, 17] {
            let x = eval_input(batch);
            frozen.predict_into(&x, &mut f32_arena);
            quant.predict_into(&x, &mut int8_arena);
            for bi in 0..batch {
                let fp = f32_arena.probs()[bi];
                let qp = int8_arena.probs()[bi];
                const DRIFT: f32 = 0.05;
                assert!(
                    (fp - qp).abs() <= DRIFT,
                    "k={kernel} b={batch}: prob drift {fp} vs {qp}"
                );
                if (fp - 0.5).abs() > DRIFT {
                    assert_eq!(
                        fp > 0.5,
                        qp > 0.5,
                        "k={kernel} b={batch}: quantized decision flipped at prob {fp}"
                    );
                }
            }
        }
    }
}

#[test]
fn frozen_steady_state_allocates_nothing_across_batches() {
    let mut net = trained_net(9, vec![4, 8], 300);
    let frozen = FrozenResNet::freeze(&net);
    let mut arena = InferenceArena::new();
    // Warm with the largest batch so every later shape fits the arena.
    frozen.predict_into(&eval_input(17), &mut arena);
    let inputs: Vec<Tensor> = [1usize, 4, 17].into_iter().map(eval_input).collect();
    let before = ds_obs::alloc_count();
    for x in &inputs {
        frozen.predict_into(x, &mut arena);
    }
    assert_eq!(
        ds_obs::alloc_count(),
        before,
        "steady-state frozen predict must not allocate"
    );
    // And the plan still matches the mutable path after arena reuse.
    assert_frozen_matches(&mut net, "post-reuse k=9 channels=[4,8]");
}
