//! Smoke tests of every experiment in the harness at test fidelity — each
//! paper artifact (FIG3, TAB-BENCH, CLAIMS, ablations) must run end to end
//! and satisfy its structural invariants.

use devicescope::bench::experiments::{ablations, claims, fig3, table};
use devicescope::bench::methods::MethodName;
use devicescope::bench::SpeedPreset;
use devicescope::datasets::{ApplianceKind, DatasetPreset};

#[test]
fn fig3_smoke_with_invariants() {
    let cfg = fig3::Fig3Config {
        preset: DatasetPreset::IdealLike,
        appliance: ApplianceKind::Dishwasher,
        budgets: vec![2, 4],
        speed: SpeedPreset::Test,
    };
    let result = fig3::run(&cfg);
    assert_eq!(result.curves.len(), 7);
    // Label-currency invariant: every strong curve's first point consumes
    // exactly window_samples times the weak budget.
    let weak_labels = result.curve("CamAL").unwrap().points[0].labels;
    for strong in ["FCN", "DAE", "UNet-MS", "TCN", "Seq2Point"] {
        let curve = result.curve(strong).unwrap();
        assert!(!curve.weak);
        assert_eq!(
            curve.points[0].labels,
            weak_labels * result.window_samples as u64,
            "{strong} label accounting broken"
        );
    }
    // The claims report always computes.
    let report = claims::compute(&result);
    assert!(report.camal.f1.is_finite());
    assert!(report.label_ratio_lower_bound >= 0.0);
    let text = claims::render(&report);
    assert!(text.contains("CamAL"));
}

#[test]
fn benchmark_table_smoke() {
    let cfg = table::TableConfig {
        presets: vec![DatasetPreset::UkdaleLike],
        appliances: vec![ApplianceKind::Kettle, ApplianceKind::Shower],
        methods: vec![
            MethodName::Camal,
            MethodName::WeakSliding,
            MethodName::Seq2Point,
        ],
        speed: SpeedPreset::Test,
    };
    let t = table::run(&cfg);
    assert_eq!(t.cells.len(), 2 * 3);
    // Weak methods consume strictly fewer labels than strong ones on the
    // same corpus.
    for appliance in ["Kettle", "Shower"] {
        let camal = t.get("UKDALE", appliance, "CamAL").unwrap();
        let s2p = t.get("UKDALE", appliance, "Seq2Point").unwrap();
        assert!(
            camal.labels_used < s2p.labels_used,
            "{appliance}: weak {} !< strong {}",
            camal.labels_used,
            s2p.labels_used
        );
    }
    // The rendered table parses visually.
    let text = table::render(&t);
    assert!(text.contains("Seq2Point"));
    // JSON round trip feeds the app.
    let json = serde_json::to_string(&t).unwrap();
    let back: devicescope::metrics::aggregate::BenchmarkTable =
        serde_json::from_str(&json).unwrap();
    assert_eq!(back.cells.len(), t.cells.len());
}

#[test]
fn ablations_smoke() {
    let report = ablations::run(
        DatasetPreset::UkdaleLike,
        ApplianceKind::Kettle,
        SpeedPreset::Test,
    );
    assert!(report.rows.len() >= 6);
    assert_eq!(report.rows[0].variant, "paper default");
    for row in &report.rows {
        assert!(row.localization_f1.is_finite());
        assert!((0.0..=1.0).contains(&row.detection_f1));
    }
}
