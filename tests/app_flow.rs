//! Integration tests of the DeviceScope app flows (§IV): the REPL session
//! a demo visitor would drive, and the scenarios.

use devicescope::app::repl::{Outcome, Repl};
use devicescope::app::state::{AppConfig, AppState};
use devicescope::app::{benchmark_frame, scenarios};
use devicescope::datasets::{ApplianceKind, DatasetPreset};
use devicescope::metrics::aggregate::{BenchmarkCell, BenchmarkTable};
use devicescope::metrics::Measures;

fn run(repl: &mut Repl, cmd: &str) -> String {
    match repl.execute(cmd) {
        Outcome::Output(s) => s,
        Outcome::Quit => String::from("<quit>"),
    }
}

fn sample_bench() -> BenchmarkTable {
    let mut t = BenchmarkTable::new();
    for (method, f1, labels) in [
        ("CamAL", 0.72, 120u64),
        ("WeakSliding", 0.33, 120),
        ("FCN", 0.68, 43_200),
    ] {
        t.push(BenchmarkCell {
            dataset: "UKDALE".into(),
            appliance: "Kettle".into(),
            method: method.into(),
            detection: Measures {
                f1: 0.8,
                ..Measures::default()
            },
            localization: Measures {
                f1,
                ..Measures::default()
            },
            labels_used: labels,
        });
    }
    t
}

#[test]
fn demo_visitor_session() {
    let mut repl = Repl::new(AppState::new(AppConfig::fast_test()), Some(sample_bench()));
    // Scenario-1 style blind exploration.
    let houses = run(&mut repl, "houses ukdale");
    let first: u32 = houses
        .split(':')
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("house list parses");
    assert!(run(&mut repl, &format!("load UKDALE {first}")).contains("Playground"));
    assert!(run(&mut repl, "window 6h").contains("6 hours"));
    let before = run(&mut repl, "show");
    assert!(!before.contains("predicted appliance status"));
    // Scenario-2 style: overlay CamAL's prediction, inspect truth.
    assert!(run(&mut repl, "select dishwasher").contains("selected"));
    let overlay = run(&mut repl, "show");
    assert!(overlay.contains("Dishwasher"));
    assert!(run(&mut repl, "perdevice dishwasher").contains("truth"));
    assert!(run(&mut repl, "probs").contains("ensemble"));
    // Scenario-3 style: benchmark frames from the preloaded table.
    let bench = run(&mut repl, "benchmark UKDALE F1");
    assert!(bench.contains("CamAL") && bench.contains("FCN"));
    let labels = run(&mut repl, "labels");
    assert!(labels.contains("Labels needed"));
    assert!(labels.find("CamAL").unwrap() < labels.find("WeakSliding").unwrap());
    assert_eq!(run(&mut repl, "quit"), "<quit>");
}

#[test]
fn scenarios_execute_in_sequence() {
    let mut state = AppState::new(AppConfig::fast_test());
    let s1 = scenarios::scenario_1(&mut state).unwrap();
    assert!(s1.contains("blind guess"));
    let s2 = scenarios::scenario_2(&mut state, ApplianceKind::Kettle).unwrap();
    assert!(s2.contains("ground truth") || s2.contains("truth"));
    let s3 = scenarios::scenario_3(&sample_bench(), "UKDALE", "F1");
    assert!(s3.contains("7 methods"));
    assert!(s3.contains("CamAL"));
}

#[test]
fn benchmark_frame_handles_all_measures() {
    let bench = sample_bench();
    for measure in Measures::NAMES {
        let out = benchmark_frame::render_dataset(&bench, "UKDALE", measure);
        assert!(out.contains(measure), "measure {measure} missing:\n{out}");
    }
}

#[test]
fn browsable_houses_are_test_houses_only() {
    // The paper: demo series come from houses never used in training.
    let mut state = AppState::new(AppConfig::fast_test());
    for preset in DatasetPreset::ALL {
        let houses = state.browsable_houses(preset);
        assert!(!houses.is_empty());
        // With 4 houses, the split is 3 train / 1 test; the browsable house
        // must be the last id.
        assert!(houses.iter().all(|&h| h >= 3), "{preset:?}: {houses:?}");
    }
}
