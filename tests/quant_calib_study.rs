//! Calibration-set-size study for the int8 plan (not a gate — run with
//! `cargo test --test quant_calib_study -- --ignored --nocapture`).
//!
//! Quantized decision flips are a function of calibration *coverage*:
//! the per-conv activation scales are pinned to the max-abs ranges the
//! calibration windows exercise, so a set that under-covers the serving
//! distribution clips activations and drifts probabilities. This study
//! trains one model, then quantizes it against growing prefixes of the
//! serving windows and reports max probability drift and decision flips
//! over the full serving set. The observed numbers back the
//! EXPERIMENTS.md note; the enforced gates live in
//! `tests/fault_injection.rs` (zero flips on the tri-state goldens) and
//! the perf suite's `quantized_predict` flip counter.

use devicescope::camal::{Camal, CamalConfig};
use devicescope::datasets::labels::Corpus;
use devicescope::datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};

const WINDOW: usize = 120;

#[test]
#[ignore = "study, not a gate: prints flip counts vs calibration-set size"]
fn flips_vs_calibration_set_size() {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
    let mut corpus = Corpus::build(&ds, ApplianceKind::Kettle, WINDOW);
    corpus.balance_train(2);
    let camal = Camal::train(&corpus, &CamalConfig::fast_test());
    let serving: Vec<Vec<f32>> = corpus.test.iter().map(|w| w.values.clone()).collect();
    assert!(serving.len() >= 16, "need a serving set to measure on");

    let mut frozen = camal.freeze();
    let reference: Vec<f32> = serving
        .iter()
        .map(|w| frozen.detect(w).probability)
        .collect();

    println!(
        "calib_windows  max_drift  decision_flips  (over {} serving windows)",
        serving.len()
    );
    for n in [1usize, 2, 4, 8, 16] {
        let calib: Vec<Vec<f32>> = serving.iter().take(n).cloned().collect();
        let mut quant = camal.freeze_quantized(&calib);
        let mut max_drift = 0.0f32;
        let mut flips = 0usize;
        for (w, &fp) in serving.iter().zip(&reference) {
            let qp = quant.detect(w).probability;
            max_drift = max_drift.max((fp - qp).abs());
            if (fp > 0.5) != (qp > 0.5) {
                flips += 1;
            }
        }
        println!("{n:>13}  {max_drift:>9.4}  {flips:>14}");
    }
}
