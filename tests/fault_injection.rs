//! Chaos suite for gap-aware tri-state serving: under every `DS_FAULT`
//! fault class the serving path must
//!
//! 1. never panic (mutable and frozen paths alike),
//! 2. surface removed readings as `Status::Unknown` — never a fabricated
//!    `Off` — and tick the `serve.*` degradation counters,
//! 3. keep **bit-identical** On/Off decisions on windows the faults did
//!    not touch, and
//! 4. partition every timestep into exactly one of On/Off/Unknown, with
//!    `Unknown` exactly on gap-owned or uncovered regions (property test
//!    over arbitrary gap patterns × window lengths × series lengths).

use std::sync::OnceLock;

use devicescope::camal::{Camal, CamalConfig};
use devicescope::datasets::labels::Corpus;
use devicescope::datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
use devicescope::timeseries::faults::FaultPlan;
use devicescope::timeseries::TimeSeries;
use proptest::prelude::*;

const WINDOW: usize = 120;

/// One model and one complete (gap-free) series, trained once for the
/// whole binary — the contract under test is serving, not training.
fn fixture() -> &'static (Camal, TimeSeries) {
    static FIXTURE: OnceLock<(Camal, TimeSeries)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut corpus = Corpus::build(&ds, ApplianceKind::Kettle, WINDOW);
        corpus.balance_train(2);
        let camal = Camal::train(&corpus, &CamalConfig::fast_test());
        // Gap-free corpus windows plus a ragged 50-sample tail, so the
        // end-aligned tail window is exercised and every later `Unknown`
        // is attributable to an injected fault.
        let mut values: Vec<f32> = corpus
            .test
            .iter()
            .take(6)
            .flat_map(|w| w.values.iter().copied())
            .collect();
        values.extend(&corpus.train[0].values[..50]);
        let series = TimeSeries::from_values(0, 60, values);
        assert!(!series.has_missing());
        (camal, series)
    })
}

/// Every fault class alone, plus all of them stacked.
const PLANS: &[&str] = &[
    "gaps:0.08",
    "nans:0.03",
    "truncate:0.3",
    "spikes:0.02",
    "flat:0.15",
    "gaps:0.05,nans:0.01,truncate:0.1,spikes:0.01,flat:0.05",
];

#[test]
fn serving_survives_every_fault_class() {
    let (camal, clean) = fixture();
    let mut frozen = camal.freeze();
    let clean_status = camal.predict_status_series(clean, WINDOW);
    assert_eq!(
        clean_status.unknown_count(),
        0,
        "clean run must abstain nowhere"
    );

    for spec in PLANS {
        let plan = FaultPlan::parse(spec).unwrap();
        let faulted = plan.apply(clean);
        // (1) No panic, and the two serving paths agree exactly.
        let mutable = camal.predict_status_series(&faulted.series, WINDOW);
        let froz = frozen.predict_status_series(&faulted.series, WINDOW);
        assert_eq!(mutable.states(), froz.states(), "{spec}: paths disagree");
        assert_eq!(mutable.len(), faulted.series.len());

        // (2) Removed readings abstain; they are never served as Off.
        for (i, &gone) in faulted.missing.iter().enumerate() {
            if gone {
                assert!(
                    mutable.states()[i].is_unknown(),
                    "{spec}: missing sample {i} served a fabricated decision"
                );
            }
        }
        // In-band removal (gaps, NaN scatter) must abstain somewhere;
        // truncation removes the tail outright, leaving no hole inside
        // the (shorter) served series, so it is exempt.
        if faulted.missing.iter().any(|&m| m) {
            assert!(
                mutable.has_unknown(),
                "{spec}: removal fault left no Unknown"
            );
        }

        // (3) Aligned windows no fault touched see identical input in both
        // runs (truncation only removes the tail), so their decisions are
        // bit-identical to the unfaulted run.
        let len = faulted.series.len();
        for lo in (0..(len / WINDOW) * WINDOW).step_by(WINDOW) {
            if (lo..lo + WINDOW).any(|i| faulted.touched(i)) {
                continue;
            }
            assert_eq!(
                &mutable.states()[lo..lo + WINDOW],
                &clean_status.states()[lo..lo + WINDOW],
                "{spec}: decisions flipped in the untouched window at {lo}"
            );
        }
    }
}

/// The int8 gate on the tri-state goldens: calibrated on the clean
/// series' own windows, the quantized plan must reproduce the f32 frozen
/// plan's tri-state decisions **exactly** — zero decision flips — on the
/// clean series and under every fault class. Quantization bounds
/// probability drift; it must never move a decision or an abstention.
#[test]
fn quantized_plan_matches_f32_decisions_on_tri_state_goldens() {
    let (camal, clean) = fixture();
    let calib: Vec<Vec<f32>> = clean
        .values()
        .chunks(WINDOW)
        .filter(|c| c.len() == WINDOW)
        .map(|c| c.to_vec())
        .collect();
    let mut frozen = camal.freeze();
    let mut quantized = camal.freeze_quantized(&calib);

    let f32_clean = frozen.predict_status_series(clean, WINDOW);
    let int8_clean = quantized.predict_status_series(clean, WINDOW);
    assert_eq!(
        f32_clean.states(),
        int8_clean.states(),
        "clean series: quantized decisions flipped"
    );

    for spec in PLANS {
        let faulted = FaultPlan::parse(spec).unwrap().apply(clean);
        let f32_status = frozen.predict_status_series(&faulted.series, WINDOW);
        let int8_status = quantized.predict_status_series(&faulted.series, WINDOW);
        assert_eq!(
            f32_status.states(),
            int8_status.states(),
            "{spec}: quantized decisions flipped under faults"
        );
    }
}

#[test]
fn degradation_ticks_the_serve_counters() {
    let (camal, clean) = fixture();
    ds_obs::set_level(ds_obs::Level::Summary);
    let degraded_before = ds_obs::global().counter_get("serve.degraded_windows");
    let unknown_before = ds_obs::global().counter_get("serve.unknown_samples");

    let faulted = FaultPlan::parse("gaps:0.1").unwrap().apply(clean);
    let status = camal.predict_status_series(&faulted.series, WINDOW);
    ds_obs::set_level(ds_obs::Level::Off);

    assert!(status.has_unknown());
    assert!(
        ds_obs::global().counter_get("serve.degraded_windows") > degraded_before,
        "gap windows must tick serve.degraded_windows"
    );
    assert!(
        ds_obs::global().counter_get("serve.unknown_samples")
            >= unknown_before + status.unknown_count() as u64,
        "abstentions must tick serve.unknown_samples"
    );
}

/// The expected tri-state coverage of one series under the gap-aware
/// plan, reimplemented independently of the serving code: aligned
/// non-overlapping windows own their range; when the length is not a
/// multiple, one end-aligned window owns the ragged suffix; a window with
/// any missing sample abstains over everything it owns; anything shorter
/// than one window is entirely uncovered.
fn expected_unknown(values: &[f32], w: usize) -> Vec<bool> {
    let len = values.len();
    let mut unknown = vec![true; len];
    if len < w {
        return unknown;
    }
    let aligned_end = (len / w) * w;
    let mut owners: Vec<(usize, usize, usize)> = (0..aligned_end / w)
        .map(|k| (k * w, k * w, k * w + w))
        .collect();
    if len > aligned_end {
        owners.push((len - w, aligned_end, len));
    }
    for (lo, own_from, own_to) in owners {
        let gap = values[lo..lo + w].iter().any(|v| v.is_nan());
        for u in &mut unknown[own_from..own_to] {
            *u = gap;
        }
    }
    unknown
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (4) Partition property: every timestep is classified exactly once,
    /// `Unknown` exactly on gap-owned or uncovered regions, and on a clean
    /// series the binary view matches per-window localization (the
    /// pre-tri-state behavior) over the aligned prefix.
    #[test]
    fn tri_state_partitions_every_timestep(
        w in prop::sample::select(vec![24usize, 40, 60]),
        len in 0usize..400,
        gap_seed in 0u64..1_000,
        gap_density in 0usize..4,
    ) {
        let (camal, source) = fixture();
        // Deterministic pseudo-gap mask from the seed: density 0 leaves the
        // series clean, higher densities scatter more NaN.
        let mut values: Vec<f32> = source.values().iter().copied().cycle().take(len).collect();
        if gap_density > 0 {
            let mut state = gap_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for v in values.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state % 17 < gap_density as u64 * 2 {
                    *v = f32::NAN;
                }
            }
        }
        let expected = expected_unknown(&values, w);
        let series = TimeSeries::from_values(0, 60, values.clone());
        let status = camal.predict_status_series(&series, w);

        prop_assert_eq!(status.len(), len);
        for (i, s) in status.states().iter().enumerate() {
            // Exactly one classification per timestep, and Unknown iff the
            // timestep is gap-owned or uncovered.
            prop_assert_eq!(
                s.is_unknown(), expected[i],
                "timestep {} misclassified (state {:?})", i, s
            );
            prop_assert!(s.is_on() as u8 + s.is_off() as u8 + s.is_unknown() as u8 == 1);
        }
        // Clean series, aligned prefix: the binary view reproduces plain
        // per-window localization, i.e. pre-change behavior.
        if gap_density == 0 && len >= w {
            let binary = status.as_binary();
            for lo in (0..(len / w) * w).step_by(w) {
                let out = camal.localize(&values[lo..lo + w]);
                prop_assert_eq!(
                    &binary[lo..lo + w], out.status.as_slice(),
                    "aligned window at {} diverged from direct localization", lo
                );
            }
        }
    }
}
