//! The ds-par contract, checked end to end: for ANY worker count, every
//! parallel inference path produces output **bit-identical** to the
//! sequential path. Chunk boundaries in the hot paths are fixed (conv
//! rows per task from the MAC budget, `WINDOW_CHUNK` windows per
//! localization task) and never derived from the worker count, so the
//! only thing threads change is wall time.
//!
//! All tests flip the process-wide worker override, so they serialize
//! through one lock.

use devicescope::camal::localizer::localize_batch;
use devicescope::camal::{CamalConfig, LocalizerConfig, ResNetEnsemble};
use devicescope::neural::conv::Conv1d;
use devicescope::neural::tensor::Tensor;
use devicescope::par;
use proptest::prelude::*;
use std::sync::Mutex;

static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` once per worker count in `0, 2, 3, 8` (0 = sequential
/// fallback) and return the outputs next to the 1-worker reference.
fn across_worker_counts<R>(f: impl Fn() -> R) -> (R, Vec<(usize, R)>) {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::set_threads(Some(1));
    let reference = f();
    let runs = [0usize, 2, 3, 8]
        .into_iter()
        .map(|w| {
            par::set_threads(Some(w));
            (w, f())
        })
        .collect();
    par::set_threads(None);
    (reference, runs)
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Conv1d forward: the register-blocked, row-fanned kernel is exact.
    #[test]
    fn conv_forward_is_bit_identical_across_worker_counts(
        values in prop::collection::vec(-2.0f32..2.0, 1024..1025),
        kernel in prop::sample::select(vec![1usize, 3, 5, 7, 9, 15, 11]),
        batch in 1usize..5,
    ) {
        let conv = Conv1d::new(4, 8, kernel, 11);
        let l = 256 / batch; // ≥ 51 ≥ any kernel in the set
        let x = Tensor::from_data(batch, 4, l, values[..batch * 4 * l].to_vec());
        let (reference, runs) = across_worker_counts(|| conv.infer(&x));
        for (w, run) in runs {
            prop_assert_eq!(bits(&reference.data), bits(&run.data), "workers = {}", w);
        }
    }

    /// Ensemble probability: member fan-out never reorders or perturbs.
    #[test]
    fn ensemble_probability_is_bit_identical_across_worker_counts(
        seed_vals in prop::collection::vec(0.0f32..1500.0, 1280..1281),
    ) {
        let ensemble = ResNetEnsemble::untrained(&CamalConfig::fast_test());
        let windows: Vec<Vec<f32>> =
            seed_vals.chunks(64).map(|c| c.to_vec()).collect();
        let x = Tensor::from_windows(&windows);
        let (reference, runs) = across_worker_counts(|| {
            let outputs = ensemble.predict(&x);
            ResNetEnsemble::ensemble_probability(&outputs)
        });
        for (w, run) in runs {
            prop_assert_eq!(bits(&reference), bits(&run), "workers = {}", w);
        }
    }

    /// End-to-end localization masks: the full pipeline (normalize →
    /// ensemble → CAM → attention → status) is exact under window fan-out.
    #[test]
    fn localization_masks_are_bit_identical_across_worker_counts(
        seed_vals in prop::collection::vec(0.0f32..2500.0, 960..961),
    ) {
        let ensemble = ResNetEnsemble::untrained(&CamalConfig::fast_test());
        let cfg = LocalizerConfig {
            gate_on_detection: false,
            ..LocalizerConfig::default()
        };
        let windows: Vec<Vec<f32>> =
            seed_vals.chunks(48).map(|c| c.to_vec()).collect();
        let refs: Vec<&[f32]> = windows.iter().map(|w| w.as_slice()).collect();
        let (reference, runs) = across_worker_counts(|| localize_batch(&ensemble, &refs, &cfg));
        for (w, run) in runs {
            prop_assert_eq!(reference.len(), run.len());
            for (a, b) in reference.iter().zip(&run) {
                prop_assert_eq!(bits(&a.cam), bits(&b.cam), "workers = {}", w);
                prop_assert_eq!(&a.status, &b.status, "workers = {}", w);
                prop_assert_eq!(
                    a.detection.probability.to_bits(),
                    b.detection.probability.to_bits(),
                    "workers = {}", w
                );
            }
        }
    }
}
