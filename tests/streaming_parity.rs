//! Streaming ↔ batch parity suite: the incremental inference engine must
//! be **bit-identical** to the batch frozen path at every push, for every
//! way the same samples can arrive.
//!
//! Two layers are pinned here:
//!
//! 1. [`StreamingCamal`] (grid-window streaming): at every emitted prefix
//!    the tri-state status series equals a full
//!    `FrozenCamal::predict_status_into` on the same samples — the
//!    earlier-window-wins tail merge, gap-degraded `Unknown` windows and
//!    all — and every absorbed clean window's probability / CAM / status
//!    slab equals the batch plan's output bitwise. Property-tested across
//!    push stride × fault class (the `DS_FAULT` grammar, applied
//!    in-process with varied seeds) × worker-team size × precision
//!    (f32 / int8).
//! 2. [`StreamingPlan`] (suffix-incremental conv): the ring-buffer
//!    forward over a growing prefix reproduces the batch network's
//!    probability, logits and CAM bit-for-bit under both SIMD dispatch
//!    modes — the AVX2 chunk-cover rule is exactly what makes f32
//!    reuse legal.

use std::sync::OnceLock;

use devicescope::camal::{Camal, CamalConfig, StreamingCamal};
use devicescope::datasets::labels::Corpus;
use devicescope::datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
use devicescope::neural::plan::InferenceArena;
use devicescope::neural::resnet::{ResNet, ResNetConfig};
use devicescope::neural::simd::{set_mode, SimdMode};
use devicescope::neural::streaming::StreamingPlan;
use devicescope::neural::tensor::Tensor;
use devicescope::neural::FrozenResNet;
use devicescope::timeseries::faults::FaultPlan;
use devicescope::timeseries::TimeSeries;
use proptest::prelude::*;

const WINDOW: usize = 120;

/// One trained model, one clean multi-window series with a ragged tail,
/// and the calibration windows for the int8 plan — built once per binary.
fn fixture() -> &'static (Camal, TimeSeries, Vec<Vec<f32>>) {
    static FIXTURE: OnceLock<(Camal, TimeSeries, Vec<Vec<f32>>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut corpus = Corpus::build(&ds, ApplianceKind::Kettle, WINDOW);
        corpus.balance_train(2);
        let camal = Camal::train(&corpus, &CamalConfig::fast_test());
        let mut values: Vec<f32> = corpus
            .test
            .iter()
            .take(5)
            .flat_map(|w| w.values.iter().copied())
            .collect();
        values.extend(&corpus.train[0].values[..47]);
        let series = TimeSeries::from_values(0, 60, values);
        assert!(!series.has_missing());
        let calib: Vec<Vec<f32>> = corpus
            .train
            .iter()
            .take(6)
            .map(|w| w.values.clone())
            .collect();
        (camal, series, calib)
    })
}

/// Restore the ambient worker team when a property bails early.
struct ThreadGuard;
impl Drop for ThreadGuard {
    fn drop(&mut self) {
        ds_par::set_threads(None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Layer 2 parity: streamed status (and absorbed-window artifacts)
    /// equal the batch frozen path bitwise at every push, under every
    /// combination of arrival stride, fault class, team size and
    /// precision.
    #[test]
    fn streaming_camal_matches_batch_bitwise(
        stride in prop::sample::select(vec![7usize, 30, 60, 90, 120, 133, 1024]),
        spec in prop::sample::select(vec![
            "",
            "gaps:0.08",
            "nans:0.03",
            "truncate:0.3",
            "spikes:0.02",
            "flat:0.15",
            "gaps:0.05,nans:0.01,truncate:0.1,spikes:0.01,flat:0.05",
        ]),
        fault_seed in 0u64..1_000,
        threads in prop::sample::select(vec![1usize, 2]),
        int8 in prop::sample::select(vec![false, true]),
    ) {
        let (camal, clean, calib) = fixture();
        let series = if spec.is_empty() {
            clean.clone()
        } else {
            FaultPlan::parse(spec).unwrap().with_seed(fault_seed).apply(clean).series
        };
        let _guard = ThreadGuard;
        ds_par::set_threads(Some(threads));
        let mut batch = if int8 {
            camal.freeze_quantized(calib)
        } else {
            camal.freeze()
        };
        let plan = if int8 {
            camal.freeze_quantized(calib)
        } else {
            camal.freeze()
        };
        let mut stream =
            StreamingCamal::new(plan, WINDOW, series.len().div_ceil(WINDOW).max(1));
        let values = series.values();
        let mut stream_states = Vec::new();
        let mut batch_states = Vec::new();
        let mut lo = 0usize;
        while lo < values.len() {
            let hi = (lo + stride).min(values.len());
            stream.push_values(&values[lo..hi]).unwrap();
            stream.status_into(&mut stream_states);
            let prefix = series.slice(0, hi).unwrap();
            batch.predict_status_into(&prefix, WINDOW, &mut batch_states);
            prop_assert_eq!(
                &stream_states, &batch_states,
                "prefix {} (stride {}, spec {:?}, int8 {}) diverged",
                hi, stride, spec, int8
            );
            lo = hi;
        }
        // Absorbed clean windows replay the batch plan's artifacts bitwise.
        for i in 0..stream.windows_completed() {
            if !stream.window_clean(i) {
                continue;
            }
            let out = batch.localize_batch_into(&[&values[i * WINDOW..(i + 1) * WINDOW]]);
            prop_assert_eq!(
                stream.window_probability(i).to_bits(),
                out.probability(0).to_bits(),
                "window {} probability", i
            );
            prop_assert_eq!(stream.window_detected(i), out.detected(0), "window {} flag", i);
            prop_assert_eq!(stream.window_status(i), out.status(0), "window {} status", i);
            let cam_same = stream
                .window_cam(i)
                .iter()
                .zip(out.cam(0))
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(cam_same, "window {} CAM bits diverged", i);
        }
    }
}

/// A briefly-trained tiny network whose BatchNorm statistics have moved
/// off initialization, frozen for the layer-1 properties.
fn trained_frozen(kernel: usize) -> FrozenResNet {
    let mut net = ResNet::new(ResNetConfig::tiny(kernel, 77));
    let x = Tensor::from_data(
        6,
        1,
        40,
        (0..6 * 40)
            .map(|i| ((i * 31 % 17) as f32 - 8.0) / 4.0)
            .collect(),
    );
    for _ in 0..4 {
        let _ = net.forward(&x, true);
    }
    FrozenResNet::freeze(&net)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Layer 1 parity: the ring-buffer suffix forward reproduces the
    /// batch forward bit-for-bit at every prefix length, for arbitrary
    /// push partitions, both SIMD modes and odd kernel widths.
    #[test]
    fn streaming_plan_matches_batch_at_every_prefix(
        kernel in prop::sample::select(vec![3usize, 5, 7]),
        chunks in prop::collection::vec(1usize..24, 3..10),
        scalar in prop::sample::select(vec![false, true]),
        seed in 0usize..50,
    ) {
        let frozen = trained_frozen(kernel);
        let total: usize = chunks.iter().sum();
        let series: Vec<f32> = (0..total)
            .map(|i| (((i + seed) * 31 % 17) as f32 - 8.0) / 4.0)
            .collect();
        set_mode(Some(if scalar { SimdMode::Scalar } else { SimdMode::Avx2 }));
        let mut plan = StreamingPlan::for_frozen(&frozen, total);
        let mut arena = InferenceArena::new();
        let mut off = 0usize;
        for &chunk in &chunks {
            let end = (off + chunk).min(total);
            plan.push(&series[off..end]).unwrap();
            off = end;
            let x = Tensor::from_data(1, 1, off, series[..off].to_vec());
            frozen.predict_into(&x, &mut arena);
            prop_assert_eq!(
                plan.probability().to_bits(),
                arena.probs()[0].to_bits(),
                "probability at prefix {} (k {}, scalar {})", off, kernel, scalar
            );
            let cam_same = plan
                .cam()
                .iter()
                .zip(arena.cam(0))
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(cam_same, "CAM bits diverged at prefix {}", off);
        }
        set_mode(None);
    }
}
