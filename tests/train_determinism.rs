//! The deterministic-training contract, checked end to end: for ANY
//! worker count, data-parallel training — member fan-out, micro-batch
//! layer kernels, and the fixed-shape gradient reduction — produces
//! trained weights, epoch losses, and final accuracy **bit-identical**
//! to the sequential path. Micro-batch heights are constants
//! (`ds_neural::workspace::MICRO_ROWS`) and partial gradients fold in
//! slot order, so the only thing `DS_PAR_THREADS` changes is wall time.
//!
//! All tests flip the process-wide worker override, so they serialize
//! through one lock.

use devicescope::camal::{CamalConfig, ResNetEnsemble};
use devicescope::neural::resnet::{ResNet, ResNetConfig};
use devicescope::neural::train::{train_classifier, TrainConfig};
use devicescope::neural::VisitParams;
use devicescope::par;
use proptest::prelude::*;
use std::sync::Mutex;

static THREAD_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` once per worker count in `0, 2, 4, 8` (0 = sequential
/// fallback) and return the outputs next to the 1-worker reference.
fn across_worker_counts<R>(f: impl Fn() -> R) -> (R, Vec<(usize, R)>) {
    let _guard = THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::set_threads(Some(1));
    let reference = f();
    let runs = [0usize, 2, 4, 8]
        .into_iter()
        .map(|w| {
            par::set_threads(Some(w));
            (w, f())
        })
        .collect();
    par::set_threads(None);
    (reference, runs)
}

fn weight_bits(net: &mut impl VisitParams) -> Vec<u32> {
    let mut out = Vec::new();
    net.visit_params(&mut |params, _| out.extend(params.iter().map(|v| v.to_bits())));
    out
}

fn toy_corpus(n: usize, len: usize, jitter: u32) -> (Vec<Vec<f32>>, Vec<u8>) {
    let mut windows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let mut w = vec![0.1f32; len];
        if i % 2 == 1 {
            for v in &mut w[len / 3..len / 2] {
                *v = 1.0;
            }
        }
        for (j, v) in w.iter_mut().enumerate() {
            *v += ((i * 5 + j * 3 + jitter as usize) % 7) as f32 * 0.01;
        }
        windows.push(w);
        labels.push((i % 2) as u8);
    }
    (windows, labels)
}

/// Everything a training run produces that the contract covers.
fn train_fingerprint(
    windows: &[Vec<f32>],
    labels: &[u8],
    cfg: &TrainConfig,
) -> (Vec<u32>, Vec<u32>, u32) {
    let mut net = ResNet::new(ResNetConfig::tiny(5, 7));
    let report = train_classifier(&mut net, windows, labels, cfg);
    (
        weight_bits(&mut net),
        report.epoch_losses.iter().map(|l| l.to_bits()).collect(),
        report.train_accuracy.to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Single-network training: micro-batch layer fan-outs plus the
    /// slot-order gradient reduction are exact at any worker count. Odd
    /// corpus sizes exercise the merged trailing batch.
    #[test]
    fn classifier_training_is_bit_identical_across_worker_counts(
        n in prop::sample::select(vec![9usize, 12, 17]),
        batch in prop::sample::select(vec![4usize, 8]),
        jitter in 0u32..1000,
    ) {
        let (windows, labels) = toy_corpus(n, 24, jitter);
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: batch,
            patience: None,
            ..TrainConfig::default()
        };
        let (reference, runs) =
            across_worker_counts(|| train_fingerprint(&windows, &labels, &cfg));
        for (w, run) in runs {
            prop_assert_eq!(&reference.0, &run.0, "weights diverged, workers = {}", w);
            prop_assert_eq!(&reference.1, &run.1, "losses diverged, workers = {}", w);
            prop_assert_eq!(reference.2, run.2, "accuracy diverged, workers = {}", w);
        }
    }

    /// Ensemble training: member fan-out on top of the layer fan-outs
    /// (nested calls run sequentially inside a worker) stays exact.
    #[test]
    fn ensemble_training_is_bit_identical_across_worker_counts(
        jitter in 0u32..1000,
    ) {
        let cfg = CamalConfig::fast_test();
        let (windows, labels) = toy_corpus(12, 24, jitter);
        let (reference, runs) = across_worker_counts(|| {
            let mut ensemble = ResNetEnsemble::untrained(&cfg);
            let reports = ensemble.train(&windows, &labels, &cfg);
            let weights: Vec<Vec<u32>> = ensemble
                .members_mut()
                .iter_mut()
                .map(weight_bits)
                .collect();
            let losses: Vec<Vec<u32>> = reports
                .iter()
                .map(|r| r.epoch_losses.iter().map(|l| l.to_bits()).collect())
                .collect();
            (weights, losses)
        });
        for (w, run) in runs {
            prop_assert_eq!(&reference.0, &run.0, "member weights diverged, workers = {}", w);
            prop_assert_eq!(&reference.1, &run.1, "member losses diverged, workers = {}", w);
        }
    }
}
