//! End-to-end trace pipeline: `DS_OBS=trace` spans flowing through a
//! ds-par dispatch must land on multiple worker timelines with correct
//! cross-thread parent linkage, and the Chrome trace-event export must
//! parse back with properly nested begin/end pairs.
//!
//! One `#[test]` per concern would race on the process-global obs level,
//! so this file holds a single test exercising the whole pipeline.

use std::collections::BTreeSet;

#[test]
fn par_spans_link_across_threads_and_export_validates() {
    ds_obs::reset();
    ds_obs::set_level(ds_obs::Level::Trace);
    ds_par::set_threads(Some(3));

    // 12 indices in chunks of 4 → 3 chunks on 3 workers: worker 0 is
    // the calling thread, the other two chunks run on spawned ds-par
    // threads with fresh (empty) span stacks. The barrier keeps all
    // three chunks in flight at once, so the spawned workers hold
    // distinct trace buffers instead of the second recycling the
    // first's retired one (which would merge their timelines).
    let barrier = std::sync::Barrier::new(3);
    let out = {
        let _outer = ds_obs::span!("pipeline");
        ds_par::par_ranges(12, 4, |_, range| {
            barrier.wait();
            range.map(|i| i as u32 * 2).sum::<u32>()
        })
    };
    ds_par::set_threads(None);
    ds_obs::set_level(ds_obs::Level::Off);
    assert_eq!(out, vec![12, 44, 76]);

    let per_thread = ds_obs::trace_events();

    // The dispatch span begins on the calling thread, nested under the
    // outer span.
    let (dispatch_tid, dispatch_id, dispatch_parent) = per_thread
        .iter()
        .flat_map(|(tid, events)| events.iter().map(move |e| (*tid, e)))
        .find(|(_, e)| e.begin && e.path.ends_with("par.dispatch"))
        .map(|(tid, e)| (tid, e.span_id, e.parent_id))
        .expect("a par.dispatch begin event");
    assert_ne!(
        dispatch_parent, 0,
        "dispatch must nest under the outer span"
    );

    // Every par.chunk span — wherever it ran — must name the dispatch
    // span as its parent: on the calling thread via the span stack, on
    // spawned workers via the inherited remote parent.
    let mut chunk_tids = BTreeSet::new();
    let mut chunks = 0;
    for (tid, events) in &per_thread {
        for e in events
            .iter()
            .filter(|e| e.begin && e.path.ends_with("par.chunk"))
        {
            assert_eq!(
                e.parent_id, dispatch_id,
                "par.chunk on tid {tid} lost its dispatch parent"
            );
            chunk_tids.insert(*tid);
            chunks += 1;
        }
    }
    assert_eq!(chunks, 3, "three chunks, three chunk spans");
    assert!(
        chunk_tids.len() >= 3 && chunk_tids.contains(&dispatch_tid),
        "chunks should span the calling thread plus ≥2 workers, got tids {chunk_tids:?}"
    );

    // The Chrome export of that same trace must parse and nest.
    let path = std::env::temp_dir().join(format!("ds_trace_pipeline_{}.json", std::process::id()));
    let stats = ds_obs::export_chrome_trace(&path).expect("export trace");
    assert!(
        stats.threads >= 3,
        "expected ≥3 thread timelines, got {}",
        stats.threads
    );
    assert_eq!(stats.dropped_spans, 0);
    let check = ds_obs::validate_chrome_trace(&path).expect("trace validates");
    assert_eq!(check.events, stats.events);
    assert!(check.threads >= 3);
    // pipeline (0) → par.dispatch (1) → calling-thread par.chunk (2).
    assert!(
        check.max_depth >= 2,
        "max depth {} too shallow",
        check.max_depth
    );

    let _ = std::fs::remove_file(&path);
    ds_obs::reset();
}
