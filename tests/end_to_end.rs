//! Workspace-spanning integration tests: the full weak-label pipeline from
//! simulation to localization, reproducibility, and the qualitative shape
//! the paper's evaluation depends on.

use devicescope::camal::{model_io, Camal, CamalConfig};
use devicescope::datasets::labels::Corpus;
use devicescope::datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
use devicescope::metrics::localization::score_status_micro;

fn corpus(preset: DatasetPreset, kind: ApplianceKind) -> Corpus {
    let ds = Dataset::generate(DatasetConfig::tiny(preset, 5, 3));
    let mut c = Corpus::build(&ds, kind, 120);
    c.balance_train(3);
    c
}

fn localization_f1(model: &Camal, corpus: &Corpus) -> f64 {
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = corpus
        .test
        .iter()
        .map(|w| (model.localize(&w.values).status, w.strong.clone()))
        .collect();
    score_status_micro(pairs.iter().map(|(p, t)| (p.as_slice(), t.as_slice()))).f1
}

#[test]
fn full_pipeline_trains_detects_localizes() {
    let c = corpus(DatasetPreset::UkdaleLike, ApplianceKind::Kettle);
    let model = Camal::train(&c, &CamalConfig::fast_test());
    // Detection must order positive windows above negative ones on average.
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for w in &c.test {
        let p = model.detect(&w.values).probability as f64;
        if w.strong.contains(&1) {
            pos.push(p);
        } else {
            neg.push(p);
        }
    }
    if !pos.is_empty() && !neg.is_empty() {
        let pos_mean = pos.iter().sum::<f64>() / pos.len() as f64;
        let neg_mean = neg.iter().sum::<f64>() / neg.len() as f64;
        assert!(
            pos_mean > neg_mean,
            "detector did not separate classes: pos {pos_mean:.3} vs neg {neg_mean:.3}"
        );
    }
    // Localization produces valid status series on every test window.
    for w in &c.test {
        let out = model.localize(&w.values);
        assert_eq!(out.status.len(), w.values.len());
        assert!(out.cam.iter().all(|c| c.is_finite()));
    }
}

#[test]
fn training_is_reproducible() {
    let c = corpus(DatasetPreset::RefitLike, ApplianceKind::Microwave);
    let cfg = CamalConfig::fast_test();
    let a = Camal::train(&c, &cfg);
    let b = Camal::train(&c, &cfg);
    for w in c.test.iter().take(3) {
        let oa = a.localize(&w.values);
        let ob = b.localize(&w.values);
        assert_eq!(oa.status, ob.status);
        assert_eq!(oa.detection.probability, ob.detection.probability);
    }
}

#[test]
fn persistence_round_trip_preserves_pipeline() {
    let c = corpus(DatasetPreset::UkdaleLike, ApplianceKind::Kettle);
    let model = Camal::train(&c, &CamalConfig::fast_test());
    let dir = std::env::temp_dir().join("ds_e2e_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("kettle.json");
    model_io::save(&model, &path).unwrap();
    let back = model_io::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let w = &c.test[0];
    assert_eq!(
        model.localize(&w.values).status,
        back.localize(&w.values).status
    );
}

#[test]
fn camal_beats_degenerate_localizers() {
    // The qualitative floor behind the paper's comparisons: CamAL must beat
    // the all-off and all-on localizers on F1 for an easy appliance.
    let c = corpus(DatasetPreset::UkdaleLike, ApplianceKind::Kettle);
    let cfg = CamalConfig {
        train: devicescope::neural::train::TrainConfig {
            epochs: 12,
            ..Default::default()
        },
        ..CamalConfig::fast_test()
    };
    let model = Camal::train(&c, &cfg);
    let camal_f1 = localization_f1(&model, &c);

    let all_on: Vec<(Vec<u8>, Vec<u8>)> = c
        .test
        .iter()
        .map(|w| (vec![1u8; w.values.len()], w.strong.clone()))
        .collect();
    let all_on_f1 = score_status_micro(all_on.iter().map(|(p, t)| (p.as_slice(), t.as_slice()))).f1;
    // All-off has F1 = 0 by definition; all-on's F1 equals the duty-cycle
    // prior. CamAL must beat both.
    assert!(
        camal_f1 > all_on_f1,
        "CamAL F1 {camal_f1:.3} does not beat the all-on prior {all_on_f1:.3}"
    );
    assert!(camal_f1 > 0.0, "CamAL produced no true positives at all");
}

#[test]
fn status_series_prediction_spans_whole_recording() {
    let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
    let mut c = Corpus::build(&ds, ApplianceKind::Shower, 120);
    c.balance_train(3);
    let model = Camal::train(&c, &CamalConfig::fast_test());
    let house = &ds.test_houses()[0];
    let status = model.predict_status_series(house.aggregate(), 120);
    assert_eq!(status.len(), house.aggregate().len());
    assert_eq!(status.interval_secs(), house.aggregate().interval_secs());
}
