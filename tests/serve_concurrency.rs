//! Concurrency contracts of the ds-serve micro-batching server:
//!
//! 1. **Exactly-once freeze** — N threads hammering
//!    [`ModelRegistry::get_or_freeze`] on a cold key perform one freeze
//!    per distinct [`PlanKey`] and all callers share one `Arc` plan.
//! 2. **Zero decision flips under batching** — concurrent requests that
//!    get fused into cross-request micro-batches answer exactly what the
//!    direct in-process plan says about the same window (probabilities
//!    within JSON round-trip tolerance, detection verdicts and status
//!    masks identical).
//! 3. **Batch-composition determinism** — the same request set issued
//!    sequentially and at high concurrency yields byte-identical
//!    response bodies: which micro-batch a window happens to ride in is
//!    not observable.
//! 4. **Backpressure, not wedge** — a burst against a shallow queue
//!    sheds the excess with 503s, serves the rest, and recovers as soon
//!    as the burst drains.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::Duration;

use devicescope::camal::{Camal, CamalConfig, Precision};
use devicescope::datasets::labels::Corpus;
use devicescope::datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
use devicescope::serve::{Client, ModelRegistry, PlanKey, ServeConfig, Server};

const WINDOW: usize = 120;
const PRESET: &str = "UKDALE_TEST";
const APPLIANCE: &str = "kettle";

/// One trained model plus calibration windows, built once per binary.
fn fixture() -> &'static (Camal, Vec<Vec<f32>>) {
    static FIXTURE: OnceLock<(Camal, Vec<Vec<f32>>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 4, 2));
        let mut corpus = Corpus::build(&ds, ApplianceKind::Kettle, WINDOW);
        corpus.balance_train(2);
        let camal = Camal::train(&corpus, &CamalConfig::fast_test());
        let calib: Vec<Vec<f32>> = corpus
            .train
            .iter()
            .take(6)
            .map(|w| w.values.clone())
            .collect();
        (camal, calib)
    })
}

fn registry() -> Arc<ModelRegistry> {
    let (camal, calib) = fixture();
    let reg = Arc::new(ModelRegistry::new());
    reg.register(PRESET, APPLIANCE, WINDOW, camal.clone(), calib.clone());
    reg
}

fn key(precision: Precision) -> PlanKey {
    PlanKey {
        preset: PRESET.to_string(),
        appliance: APPLIANCE.to_string(),
        window: WINDOW,
        backbone: devicescope::camal::Backbone::ResNet,
        precision,
    }
}

/// A deterministic non-degenerate request window, distinct per `seed`.
fn request_window(seed: usize) -> Vec<f32> {
    (0..WINDOW)
        .map(|i| ((seed * 13 + i) % 29) as f32 * 55.0 + ((i + seed) as f32 * 0.11).sin() * 20.0)
        .collect()
}

fn localize_body(values: &[f32]) -> String {
    let joined: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
    format!(
        "{{\"preset\":\"{PRESET}\",\"appliance\":\"{APPLIANCE}\",\"values\":[{}]}}",
        joined.join(",")
    )
}

#[test]
fn cold_key_freezes_exactly_once_per_plan() {
    let reg = registry();
    let threads = 8;
    let iters = 4;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let reg = Arc::clone(&reg);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut plans = Vec::new();
                for i in 0..iters {
                    // Interleave both precisions from every thread so each
                    // cell sees racing first-callers.
                    let precision = if (t + i) % 2 == 0 {
                        Precision::F32
                    } else {
                        Precision::Int8
                    };
                    plans.push((
                        precision,
                        reg.get_or_freeze(&key(precision)).expect("plan freezes"),
                    ));
                }
                plans
            })
        })
        .collect();
    let mut by_precision: Vec<(Precision, _)> = Vec::new();
    for handle in handles {
        by_precision.extend(handle.join().expect("freeze hammer thread"));
    }

    // Two distinct keys were served, so exactly two freezes happened no
    // matter how many callers raced.
    assert_eq!(reg.freeze_count(), 2, "one freeze per distinct PlanKey");
    assert_eq!(reg.frozen_plans().len(), 2);

    // Every caller for a key got the same shared plan.
    for precision in [Precision::F32, Precision::Int8] {
        let first = by_precision
            .iter()
            .find(|(p, _)| *p == precision)
            .map(|(_, plan)| plan)
            .expect("both precisions were exercised");
        for (p, plan) in &by_precision {
            if *p == precision {
                assert!(Arc::ptr_eq(first, plan), "callers share one Arc plan");
            }
        }
    }

    // Warm hits after the race perform no further freezes.
    let _ = reg.get_or_freeze(&key(Precision::F32)).unwrap();
    assert_eq!(reg.freeze_count(), 2);
}

#[test]
fn unknown_and_uncalibrated_plans_fail_cheaply() {
    let (camal, _) = fixture();
    let reg = Arc::new(ModelRegistry::new());
    reg.register(PRESET, APPLIANCE, WINDOW, camal.clone(), Vec::new());
    let missing = PlanKey {
        appliance: "dishwasher".to_string(),
        ..key(Precision::F32)
    };
    assert!(reg.get_or_freeze(&missing).is_err());
    assert!(
        reg.get_or_freeze(&key(Precision::Int8)).is_err(),
        "no calib"
    );
    assert_eq!(reg.freeze_count(), 0, "failed lookups never freeze");
}

/// Fire `bodies` at the server from `connections` concurrent keep-alive
/// clients and return the `(status, body)` replies in request order.
fn fire(addr: &str, bodies: &Arc<Vec<String>>, connections: usize) -> Vec<(u16, String)> {
    let next = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..connections)
        .map(|_| {
            let next = Arc::clone(&next);
            let bodies = Arc::clone(bodies);
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("client connects");
                let mut out = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= bodies.len() {
                        return out;
                    }
                    let (status, reply) = client
                        .post("/api/v1/localize", &bodies[idx])
                        .expect("request completes");
                    out.push((idx, status, reply));
                }
            })
        })
        .collect();
    let mut replies: Vec<(usize, u16, String)> = Vec::with_capacity(bodies.len());
    for handle in handles {
        replies.extend(handle.join().expect("client thread"));
    }
    replies.sort_by_key(|&(idx, _, _)| idx);
    replies.into_iter().map(|(_, s, b)| (s, b)).collect()
}

#[test]
fn batched_answers_match_the_direct_plan_and_are_composition_invariant() {
    let (camal, _) = fixture();
    let requests = 48;
    let windows: Vec<Vec<f32>> = (0..requests).map(request_window).collect();
    let bodies: Arc<Vec<String>> = Arc::new(windows.iter().map(|w| localize_body(w)).collect());

    // Direct oracle: the same windows, one at a time, no server.
    let mut direct = camal.freeze();
    let oracle: Vec<(f32, bool, String)> = windows
        .iter()
        .map(|w| {
            let batch = direct.localize_batch_into(&[w.as_slice()]);
            (
                batch.probability(0),
                batch.detected(0),
                batch
                    .status(0)
                    .iter()
                    .map(|&s| if s == 1 { '1' } else { '0' })
                    .collect(),
            )
        })
        .collect();

    let server = Server::start(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        registry(),
    )
    .expect("server binds");
    let addr = server.addr().to_string();

    // High concurrency: 6 clients race the collector, so windows from
    // different clients share micro-batches.
    let concurrent = fire(&addr, &bodies, 6);
    // Sequential: one client, so most batches carry a single window.
    let sequential = fire(&addr, &bodies, 1);

    let mut flips = 0;
    for (i, (status, reply)) in concurrent.iter().enumerate() {
        assert_eq!(*status, 200, "request {i} failed: {reply}");
        let parsed = serde_json::parse_value_complete(reply).expect("response is JSON");
        let probability = parsed
            .get("probability")
            .and_then(serde_json::Value::as_f64)
            .expect("probability present");
        let detected = parsed
            .get("detected")
            .and_then(serde_json::Value::as_bool)
            .expect("detected present");
        let mask = parsed
            .get("status")
            .and_then(serde_json::Value::as_str)
            .expect("status mask present");
        let (o_prob, o_detected, o_mask) = &oracle[i];
        let delta = (probability - f64::from(*o_prob)).abs();
        // NaN-safe: a missing/NaN probability must count as a flip.
        if detected != *o_detected || mask != o_mask || delta.is_nan() || delta > 1e-6 {
            flips += 1;
        }
    }
    assert_eq!(flips, 0, "micro-batching must not change any decision");

    // Which micro-batch a window rode in is not observable: the replies
    // are byte-identical across compositions.
    assert_eq!(
        concurrent, sequential,
        "batch composition leaked into responses"
    );

    let stats = server.stats();
    assert_eq!(
        stats.requests.load(Ordering::Relaxed),
        2 * requests as u64,
        "every request was answered"
    );
    assert!(
        stats.batches.load(Ordering::Relaxed) > 0,
        "requests went through the collector"
    );
    server.shutdown();
}

#[test]
fn shallow_queue_sheds_load_and_recovers() {
    let server = Server::start(
        ServeConfig {
            workers: 1,
            queue_depth: 2,
            max_wait: Duration::from_millis(25),
            ..ServeConfig::default()
        },
        registry(),
    )
    .expect("probe server binds");
    let addr = server.addr().to_string();
    let body = Arc::new(localize_body(&request_window(0)));

    // Warmup freezes the plan so the burst measures queue admission.
    {
        let mut client = Client::connect(&addr).expect("warmup connects");
        let (status, _) = client.post("/api/v1/localize", &body).expect("warmup");
        assert_eq!(status, 200);
    }

    let threads = 16;
    let per_thread = 6;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let addr = addr.clone();
            let body = Arc::clone(&body);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("burst client connects");
                barrier.wait();
                let (mut oks, mut rejected) = (0u64, 0u64);
                for _ in 0..per_thread {
                    let (status, _) = client
                        .post("/api/v1/localize", &body)
                        .expect("burst request completes");
                    match status {
                        200 => oks += 1,
                        503 => rejected += 1,
                        other => panic!("unexpected status {other} under overload"),
                    }
                }
                (oks, rejected)
            })
        })
        .collect();
    let (mut oks, mut rejected) = (0u64, 0u64);
    for handle in handles {
        let (o, r) = handle.join().expect("burst thread");
        oks += o;
        rejected += r;
    }
    assert!(rejected > 0, "the queue bound never tripped");
    assert!(oks > 0, "overload starved every request");

    // The burst has drained; admission reopens immediately.
    let mut client = Client::connect(&addr).expect("recovery connects");
    let (status, _) = client.post("/api/v1/localize", &body).expect("recovery");
    assert_eq!(status, 200, "server did not recover after the burst");
    assert_eq!(
        server.stats().rejected.load(Ordering::Relaxed),
        rejected,
        "rejected counter tracks the shed requests"
    );
    server.shutdown();
}
