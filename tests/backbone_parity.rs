//! Golden tests for the backbone zoo: every detector architecture
//! (ResNet, Inception, TransApp) must honor the same frozen-plan
//! contract the original ResNet path established in `frozen_plan.rs`:
//!
//! - f32 frozen plans reproduce the mutable path (probabilities within
//!   1e-4, CAMs within 1e-3, thresholded decisions identical) across
//!   batch sizes `{1, 4, 17}` and under both kernel dispatches;
//! - int8 plans calibrated on held-out windows stay within the drift
//!   bound and keep every decision whose f32 probability clears the
//!   threshold by more than that bound;
//! - freezing after a checkpoint round-trip (ds-core `model_io`, the v2
//!   format that tags each member with its backbone) is *bit* identical
//!   to freezing the original model;
//! - steady-state inference against a warm arena allocates nothing.
//!
//! The members are briefly trained first so normalization statistics
//! move off their initialization and probabilities leave the 0.5
//! threshold — matching the `frozen_plan.rs` methodology.

use ds_camal::model_io;
use ds_camal::{Camal, CamalConfig, ResNetEnsemble};
use ds_neural::simd::{self, SimdMode};
use ds_neural::tensor::Tensor;
use ds_neural::train::{train_classifier, TrainConfig};
use ds_neural::{Backbone, DetectorNet, InferenceArena};

const WINDOW: usize = 64;

/// A small linearly separable corpus: odd windows carry a burst.
fn corpus(n: usize) -> (Vec<Vec<f32>>, Vec<u8>) {
    let windows: Vec<Vec<f32>> = (0..n)
        .map(|w| {
            (0..WINDOW)
                .map(|i| {
                    let base = ((w * 17 + i) % 23) as f32 * 0.04;
                    let burst = if w % 2 == 1 && i % 20 < 8 { 1.0 } else { 0.0 };
                    base + burst
                })
                .collect()
        })
        .collect();
    let labels: Vec<u8> = (0..n).map(|w| (w % 2) as u8).collect();
    (windows, labels)
}

/// Varied evaluation input, disjoint from the training corpus pattern.
fn eval_input(batch: usize) -> Tensor {
    let data: Vec<f32> = (0..batch * WINDOW)
        .map(|i| ((i * 31 % 17) as f32 - 8.0) / 4.0 + (i as f32 * 0.09).sin())
        .collect();
    Tensor::from_data(batch, 1, WINDOW, data)
}

/// Held-out calibration windows at a phase disjoint from [`eval_input`]
/// but covering the same value range (see `frozen_plan.rs` for why
/// calibrating on the training corpus would inflate drift).
fn calib_input(batch: usize) -> Tensor {
    let data: Vec<f32> = (0..batch * WINDOW)
        .map(|i| (((i * 37 + 3) % 17) as f32 - 8.0) / 4.0 + (i as f32 * 0.07 + 1.0).sin())
        .collect();
    Tensor::from_data(batch, 1, WINDOW, data)
}

fn trained_net(backbone: Backbone, seed: u64) -> DetectorNet {
    let mut net = DetectorNet::for_backbone(backbone, 1, &[4, 8], 5, 2, seed);
    let (windows, labels) = corpus(16);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 4,
        patience: None,
        ..TrainConfig::default()
    };
    train_classifier(&mut net, &windows, &labels, &cfg);
    net
}

/// The f32 contract: probabilities within 1e-4 of the mutable path,
/// CAMs within 1e-3, thresholded decisions identical.
fn assert_frozen_matches(net: &DetectorNet, label: &str) {
    let frozen = net.freeze();
    assert_eq!(frozen.backbone(), net.backbone(), "{label}: tag lost");
    let mut arena = InferenceArena::new();
    for batch in [1usize, 4, 17] {
        let x = eval_input(batch);
        let (probs, cams) = net.infer_with_cam(&x);
        frozen.predict_into(&x, &mut arena);
        for bi in 0..batch {
            assert!(
                (arena.probs()[bi] - probs[bi]).abs() <= 1e-4,
                "{label} b={batch}: prob {} vs reference {}",
                arena.probs()[bi],
                probs[bi]
            );
            assert_eq!(
                arena.probs()[bi] > 0.5,
                probs[bi] > 0.5,
                "{label} b={batch}: decision flipped at prob {}",
                probs[bi]
            );
            for (a, r) in arena.cam(bi).iter().zip(&cams[bi]) {
                assert!(
                    (a - r).abs() <= 1e-3,
                    "{label} b={batch}: cam {a} vs reference {r}"
                );
            }
        }
    }
}

#[test]
fn frozen_plans_match_the_mutable_path_for_every_backbone() {
    for (i, backbone) in Backbone::ALL.into_iter().enumerate() {
        let net = trained_net(backbone, 600 + i as u64);
        assert_frozen_matches(&net, backbone.label());
    }
}

/// The contract holds under *both* kernel dispatches, for every
/// backbone: the scalar twins (a `DS_SIMD=off` run) and the vectorized
/// path must each reproduce the mutable reference.
#[test]
fn backbone_contract_holds_under_both_dispatches() {
    for (dispatch, mode) in [
        ("scalar", SimdMode::Scalar),
        // Falls back to scalar on hosts without AVX2 — the golden then
        // re-checks the twin rather than silently skipping.
        ("simd", SimdMode::Avx2),
    ] {
        simd::set_mode(Some(mode));
        for (i, backbone) in Backbone::ALL.into_iter().enumerate() {
            let net = trained_net(backbone, 700 + i as u64);
            assert_frozen_matches(&net, &format!("dispatch={dispatch} {backbone}"));
        }
        simd::set_mode(None);
    }
}

/// The int8 contract per backbone: probabilities within the drift
/// bound of the f32 plan, and any decision whose f32 probability clears
/// the threshold by more than that bound is identical. The conv
/// backbones hold the ResNet-calibrated 0.05 bound; TransApp gets a
/// wider one because its attention softmax amplifies int8 embedding
/// error at probability tails (observed ~0.052 drift at f32 prob 0.02 —
/// far from the decision threshold, but past the conv bound).
#[test]
fn quantized_plans_keep_decisions_for_every_backbone() {
    for (i, backbone) in Backbone::ALL.into_iter().enumerate() {
        let drift = match backbone {
            Backbone::TransApp => 0.10f32,
            _ => 0.05,
        };
        let net = trained_net(backbone, 800 + i as u64);
        let frozen = net.freeze();
        let quant = net.freeze_quantized(&calib_input(8));
        assert_eq!(quant.backbone(), backbone, "tag lost over quantization");

        let mut f32_arena = InferenceArena::new();
        let mut int8_arena = InferenceArena::new();
        for batch in [1usize, 4, 17] {
            let x = eval_input(batch);
            frozen.predict_into(&x, &mut f32_arena);
            quant.predict_into(&x, &mut int8_arena);
            for bi in 0..batch {
                let fp = f32_arena.probs()[bi];
                let qp = int8_arena.probs()[bi];
                assert!(
                    (fp - qp).abs() <= drift,
                    "{backbone} b={batch}: prob drift {fp} vs {qp}"
                );
                if (fp - 0.5).abs() > drift {
                    assert_eq!(
                        fp > 0.5,
                        qp > 0.5,
                        "{backbone} b={batch}: quantized decision flipped at prob {fp}"
                    );
                }
            }
        }
    }
}

/// Freezing after a save/load round-trip through the v2 checkpoint
/// format must be *bit* identical to freezing the in-memory original —
/// for a single-backbone model of each architecture and for a mixed
/// ensemble, at f32 and at int8.
#[test]
fn freeze_after_checkpoint_round_trip_is_bit_identical() {
    let (windows, labels) = corpus(16);
    let mut zoo: Vec<(String, Camal)> = Backbone::ALL
        .into_iter()
        .map(|b| {
            (
                b.label().to_string(),
                trained_camal(&windows, &labels, vec![b]),
            )
        })
        .collect();
    zoo.push((
        "mixed".to_string(),
        trained_camal(&windows, &labels, Backbone::ALL.to_vec()),
    ));

    let calib: Vec<Vec<f32>> = {
        let t = calib_input(8);
        (0..8).map(|bi| t.row(bi, 0).to_vec()).collect()
    };
    for (label, model) in &zoo {
        let restored = model_io::from_json(&model_io::to_json(model)).unwrap();
        let member_tags = |m: &Camal| -> Vec<Backbone> {
            m.ensemble()
                .members()
                .iter()
                .map(|n| n.backbone())
                .collect()
        };
        assert_eq!(
            member_tags(model),
            member_tags(&restored),
            "{label}: member backbones changed over checkpoint"
        );
        assert_eq!(
            model.freeze().ensemble().param_bits(),
            restored.freeze().ensemble().param_bits(),
            "{label}: f32 freeze not bit-identical after round-trip"
        );
        assert_eq!(
            model.freeze_quantized(&calib).ensemble().param_bits(),
            restored.freeze_quantized(&calib).ensemble().param_bits(),
            "{label}: int8 freeze not bit-identical after round-trip"
        );
    }
}

fn trained_camal(windows: &[Vec<f32>], labels: &[u8], backbones: Vec<Backbone>) -> Camal {
    let mut cfg = CamalConfig {
        kernel_sizes: vec![5],
        channels: vec![4, 8],
        backbones,
        ..CamalConfig::default()
    };
    cfg.train.epochs = 2;
    cfg.train.batch_size = 4;
    cfg.train.patience = None;
    let mut ensemble = ResNetEnsemble::untrained(&cfg);
    ensemble.train(windows, labels, &cfg);
    Camal::from_parts(ensemble, cfg)
}

/// Steady-state inference against a warm arena allocates nothing — for
/// every backbone, at f32 and at int8.
#[test]
fn frozen_steady_state_allocates_nothing_for_every_backbone() {
    for (i, backbone) in Backbone::ALL.into_iter().enumerate() {
        let net = trained_net(backbone, 900 + i as u64);
        let frozen = net.freeze();
        let quant = net.freeze_quantized(&calib_input(8));
        let inputs: Vec<Tensor> = [1usize, 4, 17].into_iter().map(eval_input).collect();
        let mut arena = InferenceArena::new();
        // Warm with the largest batch so every later shape fits.
        frozen.predict_into(&eval_input(17), &mut arena);
        let before = ds_obs::alloc_count();
        for x in &inputs {
            frozen.predict_into(x, &mut arena);
        }
        assert_eq!(
            ds_obs::alloc_count(),
            before,
            "{backbone}: steady-state f32 predict must not allocate"
        );

        let mut qarena = InferenceArena::new();
        quant.predict_into(&eval_input(17), &mut qarena);
        let before = ds_obs::alloc_count();
        for x in &inputs {
            quant.predict_into(x, &mut qarena);
        }
        assert_eq!(
            ds_obs::alloc_count(),
            before,
            "{backbone}: steady-state int8 predict must not allocate"
        );
        // And the plan still matches the mutable path after arena reuse.
        assert_frozen_matches(&net, &format!("post-reuse {backbone}"));
    }
}
