#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 suite.
#
#   ./ci.sh            # run everything
#   ./ci.sh --no-lint  # skip fmt/clippy (e.g. on toolchains without them)
set -euo pipefail
cd "$(dirname "$0")"

run_lint=1
if [[ "${1:-}" == "--no-lint" ]]; then
    run_lint=0
fi

if [[ $run_lint -eq 1 ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> perf: cargo bench --no-run (benches stay compilable)"
cargo bench --workspace --no-run

echo "==> perf: seq-vs-par smoke (writes results/BENCH_perf.json)"
cargo run -q --release -p ds-bench --bin perf -- --smoke

echo "ci: all checks passed"
