#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 suite.
#
#   ./ci.sh            # run everything
#   ./ci.sh --no-lint  # skip fmt/clippy (e.g. on toolchains without them)
set -euo pipefail
cd "$(dirname "$0")"

run_lint=1
if [[ "${1:-}" == "--no-lint" ]]; then
    run_lint=0
fi

if [[ $run_lint -eq 1 ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> perf: cargo bench --no-run (benches stay compilable)"
cargo bench --workspace --no-run

echo "==> chaos: fault-injection suite (no panics, gaps surface as Unknown)"
cargo test -q --test fault_injection

echo "==> perf: smoke at 2 workers under DS_FAULT (serving must degrade, not abort)"
smoke_out="target/ci_perf_smoke.json"
smoke_log="target/ci_perf_smoke.log"
DS_FAULT=gaps:0.05,spikes:0.01 DS_PAR_THREADS=2 \
    cargo run -q --release -p ds-bench --bin perf -- --smoke --out "$smoke_out" | tee "$smoke_log"
grep -Eq 'fault smoke: .* 0 decision flips' "$smoke_log" \
    || { echo "ci: fault smoke missing or reported clean-window decision flips" >&2; exit 1; }
grep -q '"name": *"train_epoch"' "$smoke_out" \
    || { echo "ci: perf smoke is missing the train_epoch case" >&2; exit 1; }
grep -q '"name": *"frozen_predict"' "$smoke_out" \
    || { echo "ci: perf smoke is missing the frozen_predict case" >&2; exit 1; }
grep -q '"name": *"frozen_conv"' "$smoke_out" \
    || { echo "ci: perf smoke is missing the frozen_conv case" >&2; exit 1; }
grep -q '"name": *"quantized_predict"' "$smoke_out" \
    || { echo "ci: perf smoke is missing the quantized_predict case" >&2; exit 1; }
grep -q '"name": *"backbone_inception"' "$smoke_out" \
    || { echo "ci: perf smoke is missing the backbone_inception case" >&2; exit 1; }
grep -q '"name": *"backbone_transapp"' "$smoke_out" \
    || { echo "ci: perf smoke is missing the backbone_transapp case" >&2; exit 1; }
if grep -q '"bit_identical": *false' "$smoke_out"; then
    echo "ci: perf smoke reports a bit-identity violation" >&2
    exit 1
fi
if grep -Eq '"decision_flips": *[1-9]' "$smoke_out"; then
    echo "ci: frozen or quantized inference flipped a detection decision" >&2
    exit 1
fi
# The frozen floor is host-aware: 3.0x where the SIMD kernels dispatched,
# the pre-SIMD 1.15x on scalar-only hosts.
if grep -q '^simd: avx2' "$smoke_log"; then
    frozen_floor=3.0
else
    frozen_floor=1.15
fi
frozen_speedup=$(awk '/"name": *"frozen_predict"/{f=1} f && /"speedup"/{gsub(/[",]/,""); print $2; exit}' "$smoke_out")
echo "ci: frozen_predict speedup ${frozen_speedup}x (floor ${frozen_floor}x)"
awk -v s="$frozen_speedup" -v f="$frozen_floor" 'BEGIN { exit !(s + 0 >= f + 0) }' \
    || { echo "ci: frozen_predict speedup ${frozen_speedup}x is below the ${frozen_floor}x floor" >&2; exit 1; }

echo "==> backbones: model-zoo golden parity suite (frozen/int8/checkpoint per backbone)"
cargo test -q --test backbone_parity

echo "==> scalar twin: tier-1 + frozen + backbone goldens with DS_SIMD=off"
DS_SIMD=off cargo test -q
DS_SIMD=off cargo test -q --test backbone_parity

echo "==> scalar twin: perf smoke with DS_SIMD=off (frozen floor stays at the pre-SIMD 1.15x)"
twin_out="target/ci_perf_twin.json"
twin_log="target/ci_perf_twin.log"
DS_SIMD=off DS_PAR_THREADS=2 \
    cargo run -q --release -p ds-bench --bin perf -- --smoke --out "$twin_out" | tee "$twin_log"
grep -q '^simd: scalar' "$twin_log" \
    || { echo "ci: DS_SIMD=off run did not dispatch the scalar twins" >&2; exit 1; }
if grep -q '"bit_identical": *false' "$twin_out"; then
    echo "ci: scalar twin reports a bit-identity violation" >&2
    exit 1
fi
if grep -Eq '"decision_flips": *[1-9]' "$twin_out"; then
    echo "ci: scalar twin flipped a detection decision" >&2
    exit 1
fi
twin_speedup=$(awk '/"name": *"frozen_predict"/{f=1} f && /"speedup"/{gsub(/[",]/,""); print $2; exit}' "$twin_out")
echo "ci: scalar-twin frozen_predict speedup ${twin_speedup}x (floor 1.15x)"
awk -v s="$twin_speedup" 'BEGIN { exit !(s + 0 >= 1.15) }' \
    || { echo "ci: scalar-twin frozen_predict speedup ${twin_speedup}x is below the 1.15x floor" >&2; exit 1; }

echo "==> streaming: push-stride parity suite (streaming == batch, bitwise)"
cargo test -q --test streaming_parity

echo "==> streaming: amortized-speedup gate (ring-buffer reuse vs full recompute)"
grep -q '"name": *"streaming_predict"' "$smoke_out" \
    || { echo "ci: perf smoke is missing the streaming_predict case" >&2; exit 1; }
grep -q '"name": *"streaming_predict"' "$twin_out" \
    || { echo "ci: scalar twin is missing the streaming_predict case" >&2; exit 1; }
grep -q '"name": *"backbone_inception"' "$twin_out" \
    || { echo "ci: scalar twin is missing the backbone_inception case" >&2; exit 1; }
grep -q '"name": *"backbone_transapp"' "$twin_out" \
    || { echo "ci: scalar twin is missing the backbone_transapp case" >&2; exit 1; }
# ≥5x amortized at 75% overlap where the SIMD kernels dispatched; the
# advantage is work avoided rather than instructions vectorized, so the
# scalar floor stays at 3x.
if grep -q '^simd: avx2' "$smoke_log"; then
    streaming_floor=5.0
else
    streaming_floor=3.0
fi
streaming_speedup=$(awk '/"name": *"streaming_predict"/{f=1} f && /"speedup"/{gsub(/[",]/,""); print $2; exit}' "$smoke_out")
echo "ci: streaming_predict speedup ${streaming_speedup}x (floor ${streaming_floor}x)"
awk -v s="$streaming_speedup" -v f="$streaming_floor" 'BEGIN { exit !(s + 0 >= f + 0) }' \
    || { echo "ci: streaming_predict speedup ${streaming_speedup}x is below the ${streaming_floor}x floor" >&2; exit 1; }
twin_streaming=$(awk '/"name": *"streaming_predict"/{f=1} f && /"speedup"/{gsub(/[",]/,""); print $2; exit}' "$twin_out")
echo "ci: scalar-twin streaming_predict speedup ${twin_streaming}x (floor 3.0x)"
awk -v s="$twin_streaming" 'BEGIN { exit !(s + 0 >= 3.0) }' \
    || { echo "ci: scalar-twin streaming_predict speedup ${twin_streaming}x is below the 3.0x floor" >&2; exit 1; }

echo "==> serve: concurrency contracts (exactly-once freeze, flip-free batching, backpressure)"
cargo test -q --test serve_concurrency

echo "==> serve: micro-batch loadtest smoke (>=1k req/s, p99 <= 50 ms, 0 flips)"
serve_log="target/ci_serve.log"
DS_PAR_THREADS=2 \
    cargo run -q --release -p ds-bench --bin loadtest -- --smoke --out target/ci_serve.json | tee "$serve_log"
grep -q 'serve smoke: PASS' "$serve_log" \
    || { echo "ci: serve loadtest smoke did not pass its gates" >&2; exit 1; }
grep -q '"name": *"serve_throughput"' "$smoke_out" \
    || { echo "ci: perf smoke is missing the serve_throughput case" >&2; exit 1; }

echo "==> obs: trace smoke (DS_OBS=trace export must validate)"
trace_json="target/ci_trace.json"
trace_log="target/ci_trace.log"
rm -f "$trace_json"
DS_OBS=trace DS_TRACE="$trace_json" DS_PAR_THREADS=2 \
    cargo run -q --release -p ds-bench --bin perf -- --trace-smoke --out target/ci_trace_perf.json | tee "$trace_log"
grep -q 'trace ok:' "$trace_log" \
    || { echo "ci: trace smoke did not report a validated trace" >&2; exit 1; }
test -s "$trace_json" \
    || { echo "ci: DS_TRACE export $trace_json is missing or empty" >&2; exit 1; }

echo "==> perf: regression sentinel vs results/BENCH_perf.json"
cargo run -q --release -p ds-bench --bin regress -- \
    --fresh "$smoke_out" --out target/ci_regress.json

echo "ci: all checks passed"
