//! Figure 1 rendition: localize several appliances inside one day of
//! aggregate consumption and draw the result as ASCII (aggregate on top,
//! one status strip per appliance below), exactly the layout of the
//! paper's first figure.
//!
//! ```text
//! cargo run --release --example localize_day
//! ```

use devicescope::app::plot::{line_chart, status_strip, tri_status, tri_status_strip};
use devicescope::camal::{Camal, CamalConfig};
use devicescope::datasets::labels::Corpus;
use devicescope::datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
use devicescope::timeseries::missing::{impute, Imputation};
use devicescope::timeseries::window::WindowLength;

fn main() {
    let dataset = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 5, 6));
    let house = &dataset.test_houses()[0];
    let day_samples = WindowLength::OneDay.samples(house.aggregate().interval_secs());

    // Pick the day with the most appliance activity to make the figure rich.
    let appliances = [
        ApplianceKind::Kettle,
        ApplianceKind::Dishwasher,
        ApplianceKind::WashingMachine,
    ];
    let days = house.aggregate().len() / day_samples;
    let busiest = (0..days)
        .max_by_key(|d| {
            appliances
                .iter()
                .map(|&k| {
                    house
                        .status(k)
                        .slice(d * day_samples, (d + 1) * day_samples)
                        .map(|s| s.on_count())
                        .unwrap_or(0)
                })
                .sum::<usize>()
        })
        .unwrap_or(0);
    let window = house
        .aggregate()
        .slice(busiest * day_samples, (busiest + 1) * day_samples)
        .expect("day bounds are valid");

    println!(
        "house {} — day {} — aggregate consumption:\n",
        house.id(),
        busiest
    );
    println!("{}", line_chart(&window, 96, 12));

    let train_cfg = CamalConfig {
        kernel_sizes: vec![5, 9],
        channels: vec![8, 16],
        train: devicescope::neural::train::TrainConfig {
            epochs: 10,
            ..Default::default()
        },
        ..CamalConfig::default()
    };
    // Inference runs on a linearly imputed copy; gap timesteps render as
    // `▒` (unknown) in the prediction strip below.
    let clean = impute(&window, Imputation::Linear).into_values();
    for kind in appliances {
        let mut corpus = Corpus::build(&dataset, kind, day_samples);
        corpus.balance_train(3);
        let model = Camal::train(&corpus, &train_cfg);
        let out = model.localize(&clean);
        let truth = house
            .status(kind)
            .slice(busiest * day_samples, (busiest + 1) * day_samples)
            .expect("day bounds are valid");
        println!(
            "{:<16} pred  {}  (p={:.2})",
            kind.name(),
            tri_status_strip(&tri_status(&out.status, window.values()), 96),
            out.detection.probability
        );
        println!("{:<16} truth {}", "", status_strip(&truth.as_binary(), 96));
    }
    println!("\n(█ = on, ▒ = unknown/missing; compare each prediction with its truth strip)");
}
