//! Demonstration scenarios 1 and 2 (§IV) end-to-end: the blind guess on an
//! unlabeled aggregate window, then the second guess with CamAL's
//! localization and the per-device ground truth.
//!
//! ```text
//! cargo run --release --example blind_guess
//! ```

use devicescope::app::scenarios;
use devicescope::app::state::{AppConfig, AppState};
use devicescope::datasets::ApplianceKind;
use devicescope::timeseries::window::WindowLength;

fn main() {
    let mut state = AppState::new(AppConfig {
        camal: devicescope::camal::CamalConfig {
            kernel_sizes: vec![5, 9],
            channels: vec![8, 16],
            train: devicescope::neural::train::TrainConfig {
                epochs: 10,
                ..Default::default()
            },
            ..devicescope::camal::CamalConfig::default()
        },
        houses: 4,
        days: 4,
    });
    state
        .set_window_length(WindowLength::TwelveHours)
        .expect("nothing loaded yet, cannot fail");

    match scenarios::scenario_1(&mut state) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("scenario 1 failed: {e}");
            return;
        }
    }
    println!("\n{}\n", "─".repeat(80));
    match scenarios::scenario_2(&mut state, ApplianceKind::Kettle) {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("scenario 2 failed: {e}"),
    }
}
