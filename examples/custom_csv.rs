//! The "users could upload other datasets" path: export a simulated
//! house's meter reading to CSV, re-import it as an external series,
//! resample it from a native rate to the common 1-minute frequency, and
//! run CamAL detection over its windows.
//!
//! ```text
//! cargo run --release --example custom_csv
//! ```

use devicescope::camal::{Camal, CamalConfig};
use devicescope::datasets::labels::Corpus;
use devicescope::datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
use devicescope::timeseries::io::{read_csv_file, write_csv_file};
use devicescope::timeseries::resample::to_one_minute;
use devicescope::timeseries::window::subsequences_complete;

fn main() {
    // Simulate a REFIT-like house at its native 8-second rate (short span:
    // native-rate simulation is ~7x the samples per hour of the 1-min rate).
    let mut config = DatasetConfig::tiny(DatasetPreset::RefitLike, 2, 1);
    config.sim_interval_secs = 8;
    let dataset = Dataset::generate(config);
    let house = &dataset.houses()[0];

    // Export to CSV, as a user would from their own metering platform.
    let path = std::env::temp_dir().join("devicescope_export.csv");
    write_csv_file(house.aggregate(), &path).expect("csv export");
    println!(
        "exported {} readings at {}s to {}",
        house.aggregate().len(),
        house.aggregate().interval_secs(),
        path.display()
    );

    // Re-import and resample to the paper's 1-minute frequency.
    let imported = read_csv_file(&path).expect("csv import");
    let series = to_one_minute(&imported).expect("resample to 1 min");
    println!(
        "imported + resampled: {} one-minute readings ({}% missing)",
        series.len(),
        (series.missing_ratio() * 100.0).round()
    );

    // Train a detector on the simulated corpus and sweep the uploaded series.
    let mut corpus = Corpus::build(&dataset, ApplianceKind::Kettle, 120);
    corpus.balance_train(3);
    let model = Camal::train(
        &corpus,
        &CamalConfig {
            kernel_sizes: vec![5, 9],
            channels: vec![8, 16],
            train: devicescope::neural::train::TrainConfig {
                epochs: 8,
                ..Default::default()
            },
            ..CamalConfig::default()
        },
    );
    let windows = subsequences_complete(&series, 120, 120).expect("windowing");
    println!(
        "\nkettle detection over {} two-hour windows:",
        windows.len()
    );
    for (i, w) in windows.iter().enumerate() {
        let d = model.detect(w.values());
        println!(
            "  window {i:>2}: p={:.2} {}",
            d.probability,
            if d.detected { "DETECTED" } else { "" }
        );
    }
    std::fs::remove_file(&path).ok();
}
