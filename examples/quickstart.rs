//! Quickstart: simulate a dataset, train CamAL on weak labels, then detect
//! and localize an appliance in a window from a held-out house.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use devicescope::camal::{Camal, CamalConfig};
use devicescope::datasets::labels::Corpus;
use devicescope::datasets::{ApplianceKind, Dataset, DatasetConfig, DatasetPreset};
use devicescope::metrics::localization::score_status;

fn main() {
    // 1. A UKDALE-like dataset: 5 houses, a week each, 1-minute sampling.
    //    (Stands in for the real recordings; see DESIGN.md.)
    let dataset = Dataset::generate(DatasetConfig::tiny(DatasetPreset::UkdaleLike, 5, 7));
    println!(
        "simulated {} houses ({} train / {} test)",
        dataset.houses().len(),
        dataset.train_houses().len(),
        dataset.test_houses().len()
    );

    // 2. Weak-label corpus for the kettle: 6-hour windows, one bit each.
    let appliance = ApplianceKind::Kettle;
    let mut corpus = Corpus::build(&dataset, appliance, 360);
    corpus.balance_train(3);
    println!(
        "training corpus: {} windows ({} positive), {} weak labels total",
        corpus.train.len(),
        corpus.train_positives(),
        corpus.weak_label_count()
    );

    // 3. Train the CamAL ensemble (kernel sizes 5/7/9/15 by default; a
    //    lighter setup keeps this example fast).
    let config = CamalConfig {
        kernel_sizes: vec![5, 9],
        channels: vec![8, 16],
        train: devicescope::neural::train::TrainConfig {
            epochs: 10,
            ..Default::default()
        },
        ..CamalConfig::default()
    };
    let model = Camal::train(&corpus, &config);
    println!("trained an ensemble of {} ResNets", model.ensemble().len());

    // 4. Detect + localize on a positive test window from an unseen house.
    let window = corpus
        .test
        .iter()
        .find(|w| w.weak)
        .or_else(|| corpus.test.first())
        .expect("test corpus is never empty");
    let outcome = model.localize(&window.values);
    println!(
        "\ntest window from house {} starting at t={}:",
        window.house_id, window.start
    );
    println!(
        "  ensemble probability {:.2} -> detected: {}",
        outcome.detection.probability, outcome.detection.detected
    );
    for (kernel, p) in &outcome.detection.member_probabilities {
        println!("    member k={kernel}: {p:.2}");
    }
    let m = score_status(&outcome.status, &window.strong);
    println!(
        "  localization vs ground truth: precision {:.2}, recall {:.2}, F1 {:.2}",
        m.precision, m.recall, m.f1
    );
    let predicted_on = outcome.status.iter().filter(|&&s| s == 1).count();
    let truth_on = window.strong.iter().filter(|&&s| s == 1).count();
    println!("  predicted {predicted_on} ON minutes (ground truth: {truth_on})");
}
