//! A miniature of the paper's Figure 3: sweep the label budget for all 7
//! methods on the Dishwasher / IDEAL-like case and print the
//! F1-vs-labels table plus the §II-C claims check. (The full-fidelity
//! version is the `fig3_label_efficiency` binary in `ds-bench`.)
//!
//! ```text
//! cargo run --release --example label_efficiency
//! ```

use devicescope::bench::experiments::{claims, fig3};
use devicescope::bench::SpeedPreset;
use devicescope::datasets::{ApplianceKind, DatasetPreset};

fn main() {
    let cfg = fig3::Fig3Config {
        preset: DatasetPreset::IdealLike,
        appliance: ApplianceKind::Dishwasher,
        budgets: vec![2, 8, 24],
        speed: SpeedPreset::Test,
    };
    eprintln!(
        "sweeping label budgets {:?} for {} / {} (test fidelity)…",
        cfg.budgets,
        cfg.appliance.name(),
        cfg.preset.name()
    );
    let result = fig3::run(&cfg);
    println!("{}", fig3::render(&result));
    let report = claims::compute(&result);
    println!("{}", claims::render(&report));
}
