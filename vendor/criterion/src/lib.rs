//! Minimal API-compatible stand-in for `criterion`, vendored because the
//! build environment cannot reach crates.io.
//!
//! Supports the workspace's bench surface: `Criterion::{bench_function,
//! benchmark_group}`, groups with `bench_function` / `bench_with_input` /
//! `sample_size` / `finish`, `Bencher::iter`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!`, and a re-exported `black_box`.
//! Timing model: a short warm-up, then `sample_size` timed batches; the
//! report prints mean and median ns/iter to stdout. No statistics engine,
//! no HTML, no baseline comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement wall-clock per benchmark (split across samples).
const MEASURE_TARGET: Duration = Duration::from_millis(200);
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, `BenchmarkId`).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Throughput hint (accepted, ignored).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Drives the closure under measurement.
pub struct Bencher {
    /// Iterations per timed batch (calibrated during warm-up).
    iters_per_sample: u64,
    /// Collected per-iteration durations in ns, one entry per sample.
    samples_ns: Vec<f64>,
    mode: BencherMode,
}

enum BencherMode {
    Calibrate,
    Measure,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BencherMode::Calibrate => {
                // Determine how many iterations fit the warm-up budget.
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= WARMUP_TARGET || iters >= 1 << 40 {
                        let per_iter = elapsed.as_secs_f64() / iters as f64;
                        let sample_secs =
                            MEASURE_TARGET.as_secs_f64() / self.samples_ns.capacity().max(1) as f64;
                        self.iters_per_sample = ((sample_secs / per_iter.max(1e-12)) as u64).max(1);
                        return;
                    }
                    iters = iters.saturating_mul(2);
                }
            }
            BencherMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(f());
                }
                let elapsed = start.elapsed();
                self.samples_ns
                    .push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples_ns: Vec::with_capacity(sample_size),
        mode: BencherMode::Calibrate,
    };
    f(&mut bencher); // warm-up + calibration pass
    bencher.mode = BencherMode::Measure;
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut sorted = bencher.samples_ns.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mean = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
    println!(
        "{label:<50} time: [mean {} median {}] ({} samples x {} iters)",
        format_ns(mean),
        format_ns(median),
        sorted.len(),
        bencher.iters_per_sample,
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Mirrors `criterion_group!`: both the simple list form and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
