//! Minimal API-compatible stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `parking_lot` API it uses:
//! [`Mutex`], [`RwLock`] and their guards, with the non-poisoning `lock()`
//! / `read()` / `write()` signatures. Poisoned std locks are recovered
//! transparently (parking_lot has no poisoning at all, so recovering is
//! the closest observable behavior).

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual exclusion primitive (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert!(l.try_read().is_some());
    }
}
