//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! Implemented with hand-rolled `proc_macro::TokenStream` parsing (the
//! build environment has no `syn`/`quote`). Supports the shapes this
//! workspace actually derives on:
//!
//! - structs with named fields (honoring `#[serde(skip)]` and
//!   `#[serde(default)]`; `Option<T>` fields tolerate absence),
//! - tuple structs (newtype transparency for arity 1, arrays otherwise),
//! - enums with unit / tuple / struct variants (externally tagged, like
//!   upstream serde: `"Variant"` or `{"Variant": ...}`).
//!
//! Generic types are intentionally unsupported and produce a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    lenient_missing: bool, // Option<...> or #[serde(default)]
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consume leading attributes; return whether any was `#[serde(skip)]`
    /// / `#[serde(skip_serializing)]`-ish and whether `#[serde(default)]`.
    fn eat_attrs(&mut self) -> (bool, bool) {
        let mut skip = false;
        let mut default = false;
        loop {
            let is_hash = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_hash {
                return (skip, default);
            }
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.next() {
                let mut inner = Cursor::new(g.stream());
                if inner.eat_ident("serde") {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        for t in args.stream() {
                            if let TokenTree::Ident(id) = t {
                                match id.to_string().as_str() {
                                    "skip" | "skip_serializing" | "skip_deserializing" => {
                                        skip = true
                                    }
                                    "default" => default = true,
                                    _ => {}
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip tokens until a top-level comma (or end), tracking `<>`, and
    /// report whether the skipped type's leading ident was `Option`.
    fn skip_type(&mut self) -> bool {
        let leading_option = matches!(
            self.peek(),
            Some(TokenTree::Ident(id)) if id.to_string() == "Option"
        );
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle <= 0 => break,
                _ => {}
            }
            self.pos += 1;
        }
        leading_option
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.eat_attrs();
    c.eat_visibility();

    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        return Err("expected `struct` or `enum`".into());
    };

    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };

    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    if is_enum {
        let body = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("expected enum body, found {other:?}")),
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        if c.peek().is_none() {
            return Ok(fields);
        }
        let (skip, default) = c.eat_attrs();
        c.eat_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        if !c.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        let is_option = c.skip_type();
        fields.push(Field {
            name,
            skip,
            lenient_missing: is_option || default,
        });
        c.eat_punct(',');
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    while c.peek().is_some() {
        c.eat_attrs();
        c.eat_visibility();
        c.skip_type();
        count += 1;
        c.eat_punct(',');
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        if c.peek().is_none() {
            return Ok(variants);
        }
        c.eat_attrs();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional explicit discriminant `= expr`.
        if c.eat_punct('=') {
            while let Some(t) = c.peek() {
                if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                c.pos += 1;
            }
        }
        variants.push(Variant { name, kind });
        c.eat_punct(',');
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn ser_body(item: &Item) -> String {
    match item {
        Item::UnitStruct { .. } => "::serde::Value::Null".to_string(),
        Item::NamedStruct { fields, .. } => {
            let mut s = String::from("{ let mut map = ::serde::value::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "map.insert(\"{n}\".to_string(), ::serde::Serialize::serialize_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(map) }");
            s
        }
        Item::TupleStruct { arity: 1, .. } => {
            "::serde::Serialize::serialize_value(&self.0)".to_string()
        }
        Item::TupleStruct { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Item::Enum { name, variants } => {
            let mut s = String::from("match self {\n");
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        s.push_str(&format!(
                            "{name}::{v}({binds}) => {{ let mut map = ::serde::value::Map::new(); \
                             map.insert(\"{v}\".to_string(), {payload}); ::serde::Value::Object(map) }},\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner =
                            String::from("{ let mut inner = ::serde::value::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "inner.insert(\"{n}\".to_string(), ::serde::Serialize::serialize_value({n}));\n",
                                n = f.name
                            ));
                        }
                        inner.push_str("::serde::Value::Object(inner) }");
                        s.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ let mut map = ::serde::value::Map::new(); \
                             map.insert(\"{v}\".to_string(), {inner}); ::serde::Value::Object(map) }},\n",
                            v = v.name,
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    }
}

fn named_fields_de(ty_name: &str, ctor: &str, fields: &[Field], source: &str) -> String {
    let mut s = format!("{ctor} {{\n");
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{n}: ::core::default::Default::default(),\n",
                n = f.name
            ));
        } else if f.lenient_missing {
            s.push_str(&format!(
                "{n}: match {source}.get(\"{n}\") {{ \
                 ::core::option::Option::Some(x) => ::serde::Deserialize::deserialize_value(x)?, \
                 ::core::option::Option::None => ::core::default::Default::default() }},\n",
                n = f.name
            ));
        } else {
            s.push_str(&format!(
                "{n}: match {source}.get(\"{n}\") {{ \
                 ::core::option::Option::Some(x) => ::serde::Deserialize::deserialize_value(x)?, \
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                 ::serde::de::Error::missing_field(\"{n}\", \"{ty_name}\")) }},\n",
                n = f.name
            ));
        }
    }
    s.push('}');
    s
}

fn de_body(item: &Item) -> String {
    match item {
        Item::UnitStruct { name } => format!("::core::result::Result::Ok({name})"),
        Item::NamedStruct { name, fields } => {
            let build = named_fields_de(name, name, fields, "obj");
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::de::Error::ty(\"object\", v))?;\n\
                 ::core::result::Result::Ok({build})"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(v)?))"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::de::Error::ty(\"array\", v))?;\n\
                 if arr.len() != {arity} {{ return ::core::result::Result::Err(::serde::de::Error::msg(\
                 format!(\"expected array of {arity}, got {{}}\", arr.len()))); }}\n\
                 ::core::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::core::result::Result::Ok({name}::{v}(\
                                 ::serde::Deserialize::deserialize_value(payload)?))",
                                v = v.name
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize_value(&arr[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{ let arr = payload.as_array().ok_or_else(|| \
                                 ::serde::de::Error::ty(\"array\", payload))?;\n\
                                 if arr.len() != {arity} {{ return ::core::result::Result::Err(\
                                 ::serde::de::Error::msg(\"wrong tuple variant arity\")); }}\n\
                                 ::core::result::Result::Ok({name}::{v}({items})) }}",
                                v = v.name,
                                items = items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{v}\" => {body},\n", v = v.name));
                    }
                    VariantKind::Struct(fields) => {
                        let build = named_fields_de(
                            name,
                            &format!("{name}::{v}", v = v.name),
                            fields,
                            "inner",
                        );
                        data_arms.push_str(&format!(
                            "\"{v}\" => {{ let inner = payload.as_object().ok_or_else(|| \
                             ::serde::de::Error::ty(\"object\", payload))?; \
                             ::core::result::Result::Ok({build}) }},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::core::result::Result::Err(::serde::de::Error::msg(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n}},\n\
                 ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                 let (tag, payload) = map.iter().next().unwrap();\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => ::core::result::Result::Err(::serde::de::Error::msg(\
                 format!(\"unknown variant `{{other}}` of `{name}`\"))),\n}}\n}},\n\
                 other => ::core::result::Result::Err(::serde::de::Error::ty(\"enum\", other)),\n\
                 }}"
            )
        }
    }
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        name = item_name(&item),
        body = ser_body(&item)
    );
    code.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde_derive generated invalid code: {e}")))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let code = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}",
        name = item_name(&item),
        body = de_body(&item)
    );
    code.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde_derive generated invalid code: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}
