//! Minimal API-compatible stand-in for the slice of `rand` 0.8 used by the
//! workspace: `Rng` (`gen`, `gen_range`, `gen_bool`), `SeedableRng`
//! (`seed_from_u64`), `rngs::StdRng`, and `seq::SliceRandom`
//! (`shuffle`, `choose`).
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only relies on
//! determinism (same seed ⇒ same stream), never on exact values.

/// Low-level source of randomness, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly "at standard" (the `Standard`
/// distribution of upstream rand): floats in `[0, 1)`, full-range ints,
/// fair bools.
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-entropy bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`], mirroring `SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing random-value trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG (xoshiro256** seeded via SplitMix64). Stands in
    /// for upstream's ChaCha12-based `StdRng`; same-seed determinism holds,
    /// exact streams differ.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding scheme.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling and choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_from(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[SampleRange::sample_from(0..self.len(), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1.5f32..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
