//! Minimal API-compatible stand-in for the `crossbeam::scope` scoped-thread
//! API, backed by `std::thread::scope` (stable since Rust 1.63).
//!
//! The workspace only uses `crossbeam::scope(|s| { s.spawn(|_| ...); })`,
//! so that is all this vendored stub provides. Panic semantics match the
//! observable behavior of crossbeam closely enough for our call sites: a
//! panicking child thread surfaces as an `Err` from [`scope`].

use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

/// A scope for spawning threads that may borrow from the enclosing stack
/// frame, mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a reference to the scope
    /// (crossbeam's signature), allowing nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
        }
    }
}

/// Create a scope for spawning borrowing threads; returns `Err` with the
/// panic payload if the closure or any unjoined child thread panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut slots = vec![0u32; 4];
        super::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u32 + 1);
            }
        })
        .unwrap();
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn child_panic_is_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
