//! Minimal API-compatible stand-in for `proptest`, vendored because the
//! build environment cannot reach crates.io.
//!
//! Provides the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait over ranges / `Just` / unions / tuples,
//! `collection::{vec, btree_set}`, `num::{f32, f64}::ANY`,
//! `sample::select`, and the [`proptest!`] / [`prop_assert*`] /
//! [`prop_oneof!`] macros. Cases are generated from a deterministic
//! per-test seed (FNV of the test name), so failures reproduce across
//! runs. **No shrinking**: a failing case reports its inputs via the
//! panic message instead.

pub mod test_runner {
    /// Runner configuration (`cases` is the only knob honored here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Deterministic generation RNG (xoshiro256**, seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }

    /// FNV-1a of a test name — the deterministic per-test seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values (no shrinking in this stub).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }

        fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            MapStrategy { inner: self, f }
        }

        fn prop_filter<F>(self, _why: &'static str, f: F) -> FilterStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            FilterStrategy { inner: self, f }
        }
    }

    /// Type-erased strategy (cheaply clonable, like upstream's `BoxedStrategy`).
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct MapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FilterStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive candidates");
        }
    }

    /// Weighted union of same-typed strategies (`prop_oneof!`).
    pub struct Union<S> {
        options: Vec<(u32, S)>,
        total: u64,
    }

    impl<S: Strategy> Union<S> {
        pub fn new(options: Vec<S>) -> Union<S> {
            Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        pub fn new_weighted(options: Vec<(u32, S)>) -> Union<S> {
            let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires positive total weight");
            Union { options, total }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!()
        }
    }

    macro_rules! strategy_range_uint {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX { return rng.next_u64() as $t; }
                    lo + (rng.below(span + 1)) as $t
                }
            }
        )*};
    }
    strategy_range_uint!(u8, u16, u32, u64, usize);

    macro_rules! strategy_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX { return rng.next_u64() as $t; }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }
    strategy_range_int!(i8, i16, i32, i64, isize);

    macro_rules! strategy_range_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    strategy_range_float!(f32, f64);

    /// Upstream proptest treats `&str` as a regex strategy producing
    /// `String`s. This stub supports the small regex subset the workspace
    /// uses: literal chars, `.` (any printable char), `[abc]` / `[a-z]`
    /// classes, and per-atom repetitions `{m,n}`, `{m,}`, `{m}`, `*`,
    /// `+`, `?`. Unsupported syntax panics with the offending pattern.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    /// One regex atom: the set of chars it can produce.
    enum Atom {
        /// `.` — any printable ASCII char (space through `~`).
        AnyPrintable,
        Literal(char),
        /// `[..]` class, expanded to its member chars.
        Class(Vec<char>),
    }

    impl Atom {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                Atom::AnyPrintable => (0x20 + rng.below(0x5f) as u8) as char,
                Atom::Literal(c) => *c,
                Atom::Class(chars) => chars[rng.below(chars.len() as u64) as usize],
            }
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::AnyPrintable,
                '[' => {
                    let mut members = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some('\\') => members.push(unescape(chars.next(), pattern)),
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let hi = chars.next().unwrap_or_else(|| bad_pattern(pattern));
                                    if hi == ']' {
                                        members.push(lo);
                                        members.push('-');
                                        break;
                                    }
                                    members.extend((lo..=hi).filter(|ch| ch.is_ascii()));
                                } else {
                                    members.push(lo);
                                }
                            }
                            None => bad_pattern(pattern),
                        }
                    }
                    assert!(!members.is_empty(), "empty char class in {pattern:?}");
                    Atom::Class(members)
                }
                '\\' => Atom::Literal(unescape(chars.next(), pattern)),
                '*' | '+' | '?' | '{' | '}' | ']' | '(' | ')' | '|' => bad_pattern(pattern),
                other => Atom::Literal(other),
            };
            // Optional repetition suffix.
            let (lo, hi) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0u64, 8u64)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
                    let parse =
                        |s: &str| -> u64 { s.parse().unwrap_or_else(|_| bad_pattern(pattern)) };
                    match spec.split_once(',') {
                        Some((m, "")) => (parse(m), parse(m) + 8),
                        Some((m, n)) => (parse(m), parse(n)),
                        None => (parse(&spec), parse(&spec)),
                    }
                }
                _ => (1, 1),
            };
            assert!(lo <= hi, "bad repetition bounds in {pattern:?}");
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                out.push(atom.sample(rng));
            }
        }
        out
    }

    fn unescape(c: Option<char>, pattern: &str) -> char {
        match c {
            Some('n') => '\n',
            Some('t') => '\t',
            Some('r') => '\r',
            Some(other) => other,
            None => bad_pattern(pattern),
        }
    }

    fn bad_pattern(pattern: &str) -> ! {
        panic!("regex feature not supported by the proptest stub: {pattern:?}")
    }

    macro_rules! strategy_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    strategy_tuple! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::btree_set(element, len_range)`. Duplicate draws
    /// may produce fewer elements than drawn (same as upstream's minimum
    /// behavior under exhaustion, minus the retries).
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.len.clone().generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod num {
    macro_rules! any_float {
        ($mod_name:ident, $t:ty) => {
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Generates the full spectrum: mostly finite values across
                /// magnitudes, with occasional zeros, infinities and NaN
                /// (mirroring upstream's `ANY`).
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        match rng.below(32) {
                            0 => 0.0,
                            1 => -0.0,
                            2 => <$t>::INFINITY,
                            3 => <$t>::NEG_INFINITY,
                            4 => <$t>::NAN,
                            5 => <$t>::MIN_POSITIVE,
                            _ => {
                                // Sign * uniform mantissa * wide exponent.
                                let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
                                let exp = (rng.below(61) as i32) - 30;
                                let mantissa = rng.unit_f64() as $t;
                                sign * mantissa * (2.0 as $t).powi(exp)
                            }
                        }
                    }
                }
            }
        };
    }
    any_float!(f32, f32);
    any_float!(f64, f64);
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// `prop::sample::select(vec)` — uniform choice of one element.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; failures panic with the formatted message
/// (no shrinking, so the panic carries the raw counterexample context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Weighted / unweighted choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![$(($weight as u32, $strategy)),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// The property-test entry macro: generates one `#[test]` per function,
/// running `cases` deterministic iterations of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::seed_from_u64(
                $crate::test_runner::seed_of(concat!(module_path!(), "::", stringify!($name))),
            );
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)*
                // Bodies may `return Ok(())` to discard a case, as in real
                // proptest where they return Result<(), TestCaseError>.
                let body = || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(msg) = body() {
                    panic!("property test case failed: {}", msg);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u8..9, b in -4i64..=4, f in 0.25f32..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert!((0.25..0.75).contains(&f) || f == 0.75);
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0u8..2, 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&x| x < 2));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![4 => (0.0f32..1.0).boxed(), 1 => Just(f32::NAN).boxed()]) {
            prop_assert!(x.is_nan() || (0.0..1.0).contains(&x));
        }

        #[test]
        fn str_regex_strategies(s in ".{0,20}", t in "[a-c]{2,4}", u in "ab?c*") {
            prop_assert!(s.chars().count() <= 20);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            prop_assert!((2..=4).contains(&t.len()));
            prop_assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(u.starts_with('a'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_cases_accepted(s in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(s == "a" || s == "b");
        }
    }

    #[test]
    fn determinism_across_invocations() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..100, 1..10);
        let mut r1 = crate::test_runner::TestRng::seed_from_u64(42);
        let mut r2 = crate::test_runner::TestRng::seed_from_u64(42);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
