//! Minimal API-compatible stand-in for `serde_json`, built on the vendored
//! serde stub's [`Value`] data model: text (de)serialization with
//! `to_string` / `to_string_pretty` / `from_str` / `to_value` /
//! `from_value`, plus a hand-rolled recursive-descent JSON parser.

pub use serde::de::Error;
pub use serde::value::{Map, Number};
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serialize to compact JSON text. Infallible for this data model, but the
/// upstream-compatible signature returns `Result`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::value::to_json_string(&value.serialize_value(), None))
}

/// Serialize to pretty JSON text (2-space indentation, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::value::to_json_string(
        &value.serialize_value(),
        Some(2),
    ))
}

/// Serialize into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Deserialize from the [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize_value(value)
}

/// Parse JSON text and deserialize.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::deserialize_value(&value)
}

/// Parse JSON text into a [`Value`], requiring the full input be consumed.
pub fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of JSON input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    out.push(
                                        char::from_u32(combined)
                                            .ok_or_else(|| Error::msg("invalid surrogate"))?,
                                    );
                                } else {
                                    return Err(Error::msg("lone surrogate in string"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: decode from the source slice.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        // self.pos currently sits on 'u'.
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos = end - 1; // leave on the final hex digit; caller advances once
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::msg(format!("invalid JSON value at byte {start}")));
        }
        let number = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::PosInt(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::NegInt(i)
            } else {
                Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error::msg("invalid number"))?,
                )
            }
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::msg("invalid number"))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let v: Vec<i32> = from_str(&to_string(&vec![1, -2, 3]).unwrap()).unwrap();
        assert_eq!(v, vec![1, -2, 3]);
        let f: f32 = from_str(&to_string(&0.1f32).unwrap()).unwrap();
        assert_eq!(f, 0.1f32);
        let s: String = from_str(&to_string("hey \"quoted\"\n").unwrap()).unwrap();
        assert_eq!(s, "hey \"quoted\"\n");
        let o: Option<u64> = from_str("null").unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn parses_structures() {
        let v = parse_value_complete(r#"{"a": [1, 2.5, true, null], "b": {"c": "d"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_complete("{").is_err());
        assert!(parse_value_complete("[1,]").is_err());
        assert!(parse_value_complete("1 2").is_err());
        assert!(parse_value_complete("").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value_complete(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn pretty_output_is_indented() {
        let text = to_string_pretty(&vec![1u32]).unwrap();
        assert_eq!(text, "[\n  1\n]");
    }
}
