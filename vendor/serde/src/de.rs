//! Deserialization error type shared by the vendored `serde` / `serde_json`.

use crate::Value;
use std::fmt;

/// A deserialization / parse error (the stub analogue of `serde_json::Error`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// "invalid type" constructor: expected a kind, found this value.
    pub fn ty(expected: &str, found: &Value) -> Error {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error {
            msg: format!("invalid type: expected {expected}, found {kind}"),
        }
    }

    /// Missing struct field constructor.
    pub fn missing_field(field: &str, ty: &str) -> Error {
        Error {
            msg: format!("missing field `{field}` of `{ty}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
