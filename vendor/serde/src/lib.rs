//! Minimal API-compatible stand-in for `serde`, vendored because the build
//! environment has no access to crates.io.
//!
//! Unlike upstream serde's visitor-based architecture, this stub pivots on
//! a single JSON-like data model ([`value::Value`]): [`Serialize`] renders
//! a value tree, [`Deserialize`] reads one back. `serde_json` (also
//! vendored) provides the text round-trip. The workspace only ever
//! serializes to / deserializes from JSON, so the simplification is
//! observationally equivalent for every call site.

pub mod de;
pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types renderable into the [`Value`] data model.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_u64().ok_or_else(|| de::Error::ty("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| de::Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_i64().ok_or_else(|| de::Error::ty("integer", v))?;
                <$t>::try_from(n).map_err(|_| de::Error::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f32(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| de::Error::ty("float", v))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64().ok_or_else(|| de::Error::ty("float", v))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool().ok_or_else(|| de::Error::ty("bool", v))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| de::Error::ty("string", v))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let s = v.as_str().ok_or_else(|| de::Error::ty("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v.as_array().ok_or_else(|| de::Error::ty("array", v))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v.as_array().ok_or_else(|| de::Error::ty("array", v))?;
        if arr.len() != N {
            return Err(de::Error::msg(format!(
                "expected array of length {N}, got {}",
                arr.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = T::deserialize_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let arr = v.as_array().ok_or_else(|| de::Error::ty("tuple array", v))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(de::Error::msg(format!(
                        "expected tuple of {expected}, got array of {}", arr.len()
                    )));
                }
                Ok(($($name::deserialize_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let obj = v.as_object().ok_or_else(|| de::Error::ty("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort for deterministic output (upstream serde_json uses whatever
        // order the map iterates; determinism is strictly more useful here).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let obj = v.as_object().ok_or_else(|| de::Error::ty("object", v))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let arr = v.as_array().ok_or_else(|| de::Error::ty("array", v))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(de::Error::ty("null", other)),
        }
    }
}
