//! The JSON-like data model shared by the vendored `serde` / `serde_json`.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: sorted keys give deterministic serialization.
pub type Map = BTreeMap<String, Value>;

/// A JSON value tree (the stub's entire serde data model).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number preserving integer-ness and f32-ness for clean output.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    /// An f64 payload. Non-finite values serialize as `null` (like serde_json).
    Float(f64),
    /// An f32 payload, kept narrow so `0.1f32` prints as `0.1`.
    Float32(f32),
}

impl Number {
    pub fn from_u64(n: u64) -> Number {
        Number::PosInt(n)
    }

    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    pub fn from_f64(f: f64) -> Number {
        Number::Float(f)
    }

    pub fn from_f32(f: f32) -> Number {
        Number::Float32(f)
    }

    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
            Number::Float32(f) => f as f64,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float32(f) if f >= 0.0 && f.fract() == 0.0 => Some(f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float32(f) if f.fract() == 0.0 => Some(f as i64),
            _ => None,
        }
    }

    pub fn is_integer(&self) -> bool {
        matches!(self, Number::PosInt(_) | Number::NegInt(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                if self.is_integer() || other.is_integer() {
                    return self.as_i64() == other.as_i64()
                        && self.as_i64().is_some() == other.as_i64().is_some();
                }
            }
        }
        self.as_f64() == other.as_f64()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    write!(f, "null")
                }
            }
            Number::Float32(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 1e7 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    write!(f, "null")
                }
            }
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `value["key"]`-style access without panics: returns `Null` for
    /// missing keys / non-objects (the `get` analogue of serde_json).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::value::to_json_string(self, None))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::from_f64(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Number(Number::from_f32(f))
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Number(Number::from_u64(n as u64)) }
        }
    )*};
}
value_from_uint!(u8, u16, u32, u64, usize);

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Number(Number::from_i64(n as i64)) }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl FromIterator<(String, Value)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Value {
        Value::Object(iter.into_iter().collect())
    }
}

/// Render a value as JSON text. `indent = None` gives compact output,
/// `Some(n)` pretty-prints with `n`-space indentation.
pub fn to_json_string(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, v, indent, 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', n * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
