//! # devicescope
//!
//! Umbrella crate of the DeviceScope / CamAL reproduction (ICDE 2025).
//! Re-exports every workspace crate under one roof so the examples and the
//! integration tests read naturally; see the individual crates for the
//! substance:
//!
//! - [`timeseries`] — series, resampling, windowing, missing data.
//! - [`datasets`] — the synthetic UKDALE/REFIT/IDEAL-like substrate.
//! - [`neural`] — the pure-Rust convolutional deep-learning substrate.
//! - [`metrics`] — detection/localization measures and label accounting.
//! - [`camal`] — **CamAL**, the paper's contribution.
//! - [`baselines`] — the 6 benchmark baselines.
//! - [`app`] — the DeviceScope terminal application.
//! - [`bench`] — the experiment harness (Figure 3, benchmark grid, claims,
//!   ablations).
//! - [`par`] — the data-parallel substrate behind batched inference.
//! - [`serve`] — the micro-batching HTTP serving layer over frozen plans.

pub use ds_app as app;
pub use ds_baselines as baselines;
pub use ds_bench as bench;
pub use ds_camal as camal;
pub use ds_datasets as datasets;
pub use ds_metrics as metrics;
pub use ds_neural as neural;
pub use ds_par as par;
pub use ds_serve as serve;
pub use ds_timeseries as timeseries;
